//! The recording handle threaded through the allocator stack.
//!
//! Every instrumentable layer (facade, cache, workload wrapper) holds an
//! `Option<Arc<Recorder>>`.  When the option is `None` the layer takes **no
//! timestamp at all** — the zero-cost-when-disabled discipline is expressed
//! in the caller:
//!
//! ```ignore
//! let t0 = self.obs.as_ref().map(|_| nbbs_sync::cycles_now());
//! let out = self.inner_operation();
//! if let (Some(rec), Some(t0)) = (&self.obs, t0) {
//!     rec.record_since(OpKind::Alloc, t0, detail, OpOutcome::from_ok(out.is_some()));
//! }
//! ```
//!
//! When enabled, one recording is two `rdtsc` reads, one relaxed
//! `fetch_add`/`fetch_max` pair on a per-thread histogram shard, and one
//! relaxed ring-buffer store for the flight recorder.

use nbbs_sync::cycles_now;

use crate::flight::FlightRecorder;
use crate::hist::{bucket_index, HistogramSnapshot, LatencyHistogram};

/// The operations the stack records, one histogram each.
///
/// The first four are facade/workload-level operations; the `Cache*` kinds
/// are the magazine cache's backend-touching slow paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// An allocation observed at the facade or workload boundary.
    Alloc = 0,
    /// A release observed at the facade or workload boundary.
    Free = 1,
    /// An in-place-or-move grow at the facade.
    Grow = 2,
    /// An in-place-or-move shrink at the facade.
    Shrink = 3,
    /// A cache miss: the first backend allocation a miss performs.
    CacheMiss = 4,
    /// A magazine flush returning chunks to the backend.
    CacheFlush = 5,
    /// A batched backend refill after a miss.
    CacheRefill = 6,
    /// The slab layer carving a fresh page out of the buddy tree.
    PageGrant = 7,
    /// The slab layer returning an empty page to the buddy tree.
    PageRetire = 8,
    /// A rescue pass returning chunks or pages a panic stranded mid-flight.
    OrphanRescue = 9,
    /// A hard backend OOM served from the facade's emergency reserve.
    ReserveHit = 10,
    /// One retry-with-backoff round after a transient backend failure.
    TransientRetry = 11,
}

impl OpKind {
    /// Number of kinds (the recorder keeps one histogram per kind).
    pub const COUNT: usize = 12;

    /// Every kind, in discriminant order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Alloc,
        OpKind::Free,
        OpKind::Grow,
        OpKind::Shrink,
        OpKind::CacheMiss,
        OpKind::CacheFlush,
        OpKind::CacheRefill,
        OpKind::PageGrant,
        OpKind::PageRetire,
        OpKind::OrphanRescue,
        OpKind::ReserveHit,
        OpKind::TransientRetry,
    ];

    /// Short stable name used in reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Alloc => "alloc",
            OpKind::Free => "free",
            OpKind::Grow => "grow",
            OpKind::Shrink => "shrink",
            OpKind::CacheMiss => "cache_miss",
            OpKind::CacheFlush => "cache_flush",
            OpKind::CacheRefill => "cache_refill",
            OpKind::PageGrant => "page_grant",
            OpKind::PageRetire => "page_retire",
            OpKind::OrphanRescue => "orphan_rescue",
            OpKind::ReserveHit => "reserve_hit",
            OpKind::TransientRetry => "transient_retry",
        }
    }

    /// Inverse of the discriminant, for flight-recorder decoding.
    pub fn from_index(i: u8) -> Option<OpKind> {
        OpKind::ALL.get(i as usize).copied()
    }
}

/// Whether a recorded operation succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpOutcome {
    /// The operation completed.
    Ok = 0,
    /// The operation failed (out of memory, exhausted scan, moved realloc).
    Failed = 1,
}

impl OpOutcome {
    /// `Ok` for `true`, `Failed` for `false`.
    pub fn from_ok(ok: bool) -> Self {
        if ok {
            OpOutcome::Ok
        } else {
            OpOutcome::Failed
        }
    }
}

/// A consumer of raw, per-operation events — the hook the trace plane
/// (`nbbs-trace`) installs to see every recorded operation with its start
/// timestamp, not just the aggregate histogram bucket.
///
/// Implementations must be lock-free and cheap: the sink runs inline on
/// every (sampled) recording of every instrumented layer.  Enable/disable
/// gating is the sink's own business (the trace ring checks one relaxed
/// atomic and returns), so a Recorder with a stopped sink stays within the
/// recording-disabled overhead budget.
pub trait EventSink: Send + Sync {
    /// One completed operation: its kind, the TSC value at which it
    /// started, its duration in cycles, the flight-recorder `detail`
    /// payload (size-class log2, refill count, tree level…), and outcome.
    fn event(
        &self,
        kind: OpKind,
        start_cycles: u64,
        duration_cycles: u64,
        detail: u64,
        outcome: OpOutcome,
    );
}

/// The per-stack recording sink: one latency histogram per [`OpKind`] plus
/// the flight recorder of recent operations, and an optional [`EventSink`]
/// fan-out feeding the trace plane.
///
/// Shared as `Arc<Recorder>` by every instrumented layer of one allocator
/// stack, so a single snapshot sees the facade and the cache together —
/// and a single `set_event_sink` call threads the trace ring through every
/// layer at once.
pub struct Recorder {
    hists: [LatencyHistogram; OpKind::COUNT],
    flight: FlightRecorder,
    sink: std::sync::OnceLock<std::sync::Arc<dyn EventSink>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            flight: FlightRecorder::new(),
            sink: std::sync::OnceLock::new(),
        }
    }

    /// Installs the event sink every subsequent recording fans out to.
    /// A recorder accepts one sink for its lifetime (the layers sharing it
    /// hold plain `Arc`s — swapping sinks under them would race); returns
    /// `false` if one was already installed.
    pub fn set_event_sink(&self, sink: std::sync::Arc<dyn EventSink>) -> bool {
        self.sink.set(sink).is_ok()
    }

    /// The installed event sink, if any.
    pub fn event_sink(&self) -> Option<&std::sync::Arc<dyn EventSink>> {
        self.sink.get()
    }

    /// Records one operation that started at TSC value `start_cycles`.
    ///
    /// `detail` is a small payload shown in flight-recorder dumps — the
    /// size-class log2 for alloc/free, the tree level for CAS events, etc.
    #[inline]
    pub fn record_since(&self, kind: OpKind, start_cycles: u64, detail: u64, outcome: OpOutcome) {
        let dt = cycles_now().wrapping_sub(start_cycles);
        let bucket = bucket_index(dt);
        self.hists[kind as usize].record_with_bucket(dt, bucket);
        self.flight.push(kind, outcome, bucket as u8, detail);
        if let Some(sink) = self.sink.get() {
            sink.event(kind, start_cycles, dt, detail, outcome);
        }
    }

    /// Records one operation of known duration `cycles`.
    #[inline]
    pub fn record_cycles(&self, kind: OpKind, cycles: u64, detail: u64, outcome: OpOutcome) {
        let bucket = bucket_index(cycles);
        self.hists[kind as usize].record_with_bucket(cycles, bucket);
        self.flight.push(kind, outcome, bucket as u8, detail);
        if let Some(sink) = self.sink.get() {
            // The start is reconstructed; one TSC read is paid only when a
            // sink is actually installed.
            sink.event(
                kind,
                cycles_now().wrapping_sub(cycles),
                cycles,
                detail,
                outcome,
            );
        }
    }

    /// The histogram of one operation kind.
    pub fn histogram(&self, kind: OpKind) -> &LatencyHistogram {
        &self.hists[kind as usize]
    }

    /// Snapshot of one kind's histogram.
    pub fn snapshot(&self, kind: OpKind) -> HistogramSnapshot {
        self.hists[kind as usize].snapshot()
    }

    /// Merged snapshot over a set of kinds (e.g. `Alloc` + `Free` for the
    /// per-row tail-latency summary of a benchmark measurement).
    pub fn merged_snapshot(&self, kinds: &[OpKind]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for &k in kinds {
            out.merge(&self.snapshot(k));
        }
        out
    }

    /// The flight recorder of recent operations.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("recorded", &self.merged_snapshot(&OpKind::ALL).total())
            .finish()
    }
}

/// The size-class detail payload: `⌈log2(size)⌉`, clamped to fit the
/// flight-recorder detail field and read back as `~2^detail` bytes.
#[inline]
pub fn size_detail(size: usize) -> u64 {
    (usize::BITS - size.saturating_sub(1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_indices() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert_eq!(OpKind::from_index(i as u8), Some(*k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(OpKind::from_index(OpKind::COUNT as u8), None);
    }

    #[test]
    fn recording_lands_in_the_right_histogram() {
        let rec = Recorder::new();
        rec.record_cycles(OpKind::Alloc, 100, size_detail(128), OpOutcome::Ok);
        rec.record_cycles(OpKind::Alloc, 200, size_detail(128), OpOutcome::Ok);
        rec.record_cycles(OpKind::Free, 50, size_detail(128), OpOutcome::Ok);
        assert_eq!(rec.snapshot(OpKind::Alloc).total(), 2);
        assert_eq!(rec.snapshot(OpKind::Free).total(), 1);
        assert_eq!(rec.snapshot(OpKind::Grow).total(), 0);
        assert_eq!(
            rec.merged_snapshot(&[OpKind::Alloc, OpKind::Free]).total(),
            3
        );
        let events = rec.flight().events();
        let total: usize = events.iter().map(|(_, evs)| evs.len()).sum();
        assert_eq!(total, 3, "every recording leaves a flight event");
    }

    #[test]
    fn record_since_measures_elapsed_cycles() {
        let rec = Recorder::new();
        let t0 = nbbs_sync::cycles_now();
        let mut acc = 1u64;
        for i in 1..10_000u64 {
            acc = acc.wrapping_mul(i | 1);
        }
        std::hint::black_box(acc);
        rec.record_since(OpKind::Alloc, t0, 0, OpOutcome::Ok);
        let snap = rec.snapshot(OpKind::Alloc);
        assert_eq!(snap.total(), 1);
        assert!(snap.max > 0, "real work takes nonzero cycles");
    }

    #[test]
    fn event_sink_sees_every_recording_once_installed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[derive(Default)]
        struct Counting {
            events: AtomicU64,
            cycles: AtomicU64,
        }
        impl EventSink for Counting {
            fn event(&self, _: OpKind, start: u64, dur: u64, _: u64, _: OpOutcome) {
                assert!(start > 0, "start TSC is reconstructed when absent");
                self.events.fetch_add(1, Ordering::Relaxed);
                self.cycles.fetch_add(dur, Ordering::Relaxed);
            }
        }

        let rec = Recorder::new();
        rec.record_cycles(OpKind::Alloc, 10, 0, OpOutcome::Ok);
        let sink = Arc::new(Counting::default());
        assert!(rec.set_event_sink(Arc::clone(&sink) as Arc<dyn EventSink>));
        assert!(
            !rec.set_event_sink(Arc::clone(&sink) as Arc<dyn EventSink>),
            "a recorder accepts one sink for its lifetime"
        );
        rec.record_cycles(OpKind::PageGrant, 70, 3, OpOutcome::Ok);
        rec.record_since(OpKind::ReserveHit, cycles_now(), 1, OpOutcome::Failed);
        assert_eq!(sink.events.load(Ordering::Relaxed), 2);
        assert!(sink.cycles.load(Ordering::Relaxed) >= 70);
        assert_eq!(rec.snapshot(OpKind::PageGrant).total(), 1);
    }

    #[test]
    fn size_detail_is_log2ish() {
        assert_eq!(size_detail(1), 0);
        assert_eq!(size_detail(2), 1);
        assert_eq!(size_detail(128), 7);
        assert_eq!(size_detail(129), 8);
        assert_eq!(size_detail(1 << 20), 20);
    }
}
