//! The recording handle threaded through the allocator stack.
//!
//! Every instrumentable layer (facade, cache, workload wrapper) holds an
//! `Option<Arc<Recorder>>`.  When the option is `None` the layer takes **no
//! timestamp at all** — the zero-cost-when-disabled discipline is expressed
//! in the caller:
//!
//! ```ignore
//! let t0 = self.obs.as_ref().map(|_| nbbs_sync::cycles_now());
//! let out = self.inner_operation();
//! if let (Some(rec), Some(t0)) = (&self.obs, t0) {
//!     rec.record_since(OpKind::Alloc, t0, detail, OpOutcome::from_ok(out.is_some()));
//! }
//! ```
//!
//! When enabled, one recording is two `rdtsc` reads, one relaxed
//! `fetch_add`/`fetch_max` pair on a per-thread histogram shard, and one
//! relaxed ring-buffer store for the flight recorder.

use nbbs_sync::cycles_now;

use crate::flight::FlightRecorder;
use crate::hist::{bucket_index, HistogramSnapshot, LatencyHistogram};

/// The operations the stack records, one histogram each.
///
/// The first four are facade/workload-level operations; the `Cache*` kinds
/// are the magazine cache's backend-touching slow paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// An allocation observed at the facade or workload boundary.
    Alloc = 0,
    /// A release observed at the facade or workload boundary.
    Free = 1,
    /// An in-place-or-move grow at the facade.
    Grow = 2,
    /// An in-place-or-move shrink at the facade.
    Shrink = 3,
    /// A cache miss: the first backend allocation a miss performs.
    CacheMiss = 4,
    /// A magazine flush returning chunks to the backend.
    CacheFlush = 5,
    /// A batched backend refill after a miss.
    CacheRefill = 6,
}

impl OpKind {
    /// Number of kinds (the recorder keeps one histogram per kind).
    pub const COUNT: usize = 7;

    /// Every kind, in discriminant order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Alloc,
        OpKind::Free,
        OpKind::Grow,
        OpKind::Shrink,
        OpKind::CacheMiss,
        OpKind::CacheFlush,
        OpKind::CacheRefill,
    ];

    /// Short stable name used in reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Alloc => "alloc",
            OpKind::Free => "free",
            OpKind::Grow => "grow",
            OpKind::Shrink => "shrink",
            OpKind::CacheMiss => "cache_miss",
            OpKind::CacheFlush => "cache_flush",
            OpKind::CacheRefill => "cache_refill",
        }
    }

    /// Inverse of the discriminant, for flight-recorder decoding.
    pub fn from_index(i: u8) -> Option<OpKind> {
        OpKind::ALL.get(i as usize).copied()
    }
}

/// Whether a recorded operation succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpOutcome {
    /// The operation completed.
    Ok = 0,
    /// The operation failed (out of memory, exhausted scan, moved realloc).
    Failed = 1,
}

impl OpOutcome {
    /// `Ok` for `true`, `Failed` for `false`.
    pub fn from_ok(ok: bool) -> Self {
        if ok {
            OpOutcome::Ok
        } else {
            OpOutcome::Failed
        }
    }
}

/// The per-stack recording sink: one latency histogram per [`OpKind`] plus
/// the flight recorder of recent operations.
///
/// Shared as `Arc<Recorder>` by every instrumented layer of one allocator
/// stack, so a single snapshot sees the facade and the cache together.
pub struct Recorder {
    hists: [LatencyHistogram; OpKind::COUNT],
    flight: FlightRecorder,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            flight: FlightRecorder::new(),
        }
    }

    /// Records one operation that started at TSC value `start_cycles`.
    ///
    /// `detail` is a small payload shown in flight-recorder dumps — the
    /// size-class log2 for alloc/free, the tree level for CAS events, etc.
    #[inline]
    pub fn record_since(&self, kind: OpKind, start_cycles: u64, detail: u64, outcome: OpOutcome) {
        let dt = cycles_now().wrapping_sub(start_cycles);
        self.record_cycles(kind, dt, detail, outcome);
    }

    /// Records one operation of known duration `cycles`.
    #[inline]
    pub fn record_cycles(&self, kind: OpKind, cycles: u64, detail: u64, outcome: OpOutcome) {
        let bucket = bucket_index(cycles);
        self.hists[kind as usize].record_with_bucket(cycles, bucket);
        self.flight.push(kind, outcome, bucket as u8, detail);
    }

    /// The histogram of one operation kind.
    pub fn histogram(&self, kind: OpKind) -> &LatencyHistogram {
        &self.hists[kind as usize]
    }

    /// Snapshot of one kind's histogram.
    pub fn snapshot(&self, kind: OpKind) -> HistogramSnapshot {
        self.hists[kind as usize].snapshot()
    }

    /// Merged snapshot over a set of kinds (e.g. `Alloc` + `Free` for the
    /// per-row tail-latency summary of a benchmark measurement).
    pub fn merged_snapshot(&self, kinds: &[OpKind]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for &k in kinds {
            out.merge(&self.snapshot(k));
        }
        out
    }

    /// The flight recorder of recent operations.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("recorded", &self.merged_snapshot(&OpKind::ALL).total())
            .finish()
    }
}

/// The size-class detail payload: `⌈log2(size)⌉`, clamped to fit the
/// flight-recorder detail field and read back as `~2^detail` bytes.
#[inline]
pub fn size_detail(size: usize) -> u64 {
    (usize::BITS - size.saturating_sub(1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_indices() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert_eq!(OpKind::from_index(i as u8), Some(*k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(OpKind::from_index(OpKind::COUNT as u8), None);
    }

    #[test]
    fn recording_lands_in_the_right_histogram() {
        let rec = Recorder::new();
        rec.record_cycles(OpKind::Alloc, 100, size_detail(128), OpOutcome::Ok);
        rec.record_cycles(OpKind::Alloc, 200, size_detail(128), OpOutcome::Ok);
        rec.record_cycles(OpKind::Free, 50, size_detail(128), OpOutcome::Ok);
        assert_eq!(rec.snapshot(OpKind::Alloc).total(), 2);
        assert_eq!(rec.snapshot(OpKind::Free).total(), 1);
        assert_eq!(rec.snapshot(OpKind::Grow).total(), 0);
        assert_eq!(
            rec.merged_snapshot(&[OpKind::Alloc, OpKind::Free]).total(),
            3
        );
        let events = rec.flight().events();
        let total: usize = events.iter().map(|(_, evs)| evs.len()).sum();
        assert_eq!(total, 3, "every recording leaves a flight event");
    }

    #[test]
    fn record_since_measures_elapsed_cycles() {
        let rec = Recorder::new();
        let t0 = nbbs_sync::cycles_now();
        let mut acc = 1u64;
        for i in 1..10_000u64 {
            acc = acc.wrapping_mul(i | 1);
        }
        std::hint::black_box(acc);
        rec.record_since(OpKind::Alloc, t0, 0, OpOutcome::Ok);
        let snap = rec.snapshot(OpKind::Alloc);
        assert_eq!(snap.total(), 1);
        assert!(snap.max > 0, "real work takes nonzero cycles");
    }

    #[test]
    fn size_detail_is_log2ish() {
        assert_eq!(size_detail(1), 0);
        assert_eq!(size_detail(2), 1);
        assert_eq!(size_detail(128), 7);
        assert_eq!(size_detail(129), 8);
        assert_eq!(size_detail(1 << 20), 20);
    }
}
