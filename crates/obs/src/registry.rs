//! The unified metrics registry.
//!
//! Five PRs grew per-layer counters — `OpStatsSnapshot` (tree),
//! `CacheStatsSnapshot` and magazine capacities (cache), per-node shares
//! (`nbbs-numa`), buddy/system byte shares and realloc counters (facade) —
//! each snapshotted and printed ad hoc by whichever binary wanted them.
//! [`MetricsRegistry`] collects all of them, plus the latency histograms of
//! an attached [`Recorder`], into one typed [`StackSnapshot`] with a single
//! text-table and a single hand-rolled JSON exposition, so every binary in
//! the workspace reports identically.
//!
//! The crate sits *below* `nbbs-cache`/`nbbs-numa`/`nbbs-alloc` in the
//! dependency graph, so the node and facade figures arrive through the
//! neutral [`NodeShare`]/[`FacadeShare`] structs that the higher layers
//! convert into.

use std::sync::Arc;

use nbbs::{
    BuddyBackend, CacheStatsSnapshot, FragStatsSnapshot, MemoryStatsSnapshot, OccupancySnapshot,
    OpStatsSnapshot, CAS_LEVELS,
};

use crate::hist::LatencyPercentiles;
use crate::recorder::{OpKind, Recorder};

/// One NUMA node's service share — the dependency-neutral mirror of
/// `nbbs_numa::NodeStatsSnapshot`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeShare {
    /// Node index.
    pub node: usize,
    /// Bytes currently live on this node.
    pub allocated_bytes: u64,
    /// Allocations served to threads homed on this node.
    pub local_allocs: u64,
    /// Allocations served to remote threads (fallback traffic).
    pub remote_allocs: u64,
    /// Allocations this node could not serve.
    pub failed_allocs: u64,
}

impl NodeShare {
    /// Total allocations this node served.
    pub fn served(&self) -> u64 {
        self.local_allocs + self.remote_allocs
    }
}

/// The facade layer's service figures — the dependency-neutral mirror of
/// `nbbs-alloc`'s byte-share counters and `FacadeStatsSnapshot`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FacadeShare {
    /// Cumulative bytes served from the buddy region (by requested size).
    pub buddy_bytes: u64,
    /// Cumulative bytes that fell through to the system allocator.
    pub system_bytes: u64,
    /// `grow` requests resolved inside the already-granted block.
    pub grows_in_place: u64,
    /// `grow` requests that had to move the allocation.
    pub grows_moved: u64,
    /// `shrink` requests resolved in place.
    pub shrinks_in_place: u64,
    /// `shrink` requests that moved.
    pub shrinks_moved: u64,
    /// Requests the buddy path failed that fell through to the system
    /// allocator (degraded-mode events, not ordinary oversized traffic).
    pub system_failovers: u64,
    /// Buddy-path OOMs served from the emergency reserve.
    pub reserve_hits: u64,
    /// Reserve blocks returned by frees of reserve-owned memory.
    pub reserve_refills: u64,
    /// Cumulative bytes end users *requested* through the facade
    /// (`Layout::size`), before any rounding.
    pub requested_bytes: u64,
    /// Cumulative bytes the backend actually *granted* for those requests
    /// (size class or power-of-two chunk) — the facade-level
    /// fragmentation numerator.
    pub granted_bytes: u64,
}

impl FacadeShare {
    /// Fraction of served bytes that came from the buddy (1.0 when nothing
    /// was served).
    pub fn buddy_share(&self) -> f64 {
        let total = self.buddy_bytes + self.system_bytes;
        if total == 0 {
            1.0
        } else {
            self.buddy_bytes as f64 / total as f64
        }
    }

    /// Fraction of grows resolved in place (0.0 when no grow ran).
    pub fn grow_in_place_rate(&self) -> f64 {
        let total = self.grows_in_place + self.grows_moved;
        if total == 0 {
            0.0
        } else {
            self.grows_in_place as f64 / total as f64
        }
    }

    /// Granted-over-requested ratio at the facade boundary — internal
    /// fragmentation as the *end user* experiences it (`1.0` = no waste,
    /// and when nothing was requested).  Unlike the slab layer's
    /// `FragStatsSnapshot::ratio`, which sees magazine refill batches,
    /// this measures the caller's `Layout` sizes.
    pub fn granted_over_requested(&self) -> f64 {
        if self.requested_bytes == 0 {
            1.0
        } else {
            self.granted_bytes as f64 / self.requested_bytes as f64
        }
    }
}

/// Everything one allocator stack reports, in one typed value.
#[derive(Debug, Default, Clone)]
pub struct StackSnapshot {
    /// Stack label (allocator name, binary name, …).
    pub label: String,
    /// The backend tree's operation counters (zeros without `op-stats`).
    pub backend_ops: OpStatsSnapshot,
    /// Magazine-cache counters, if the stack has a cache layer.
    pub cache: Option<CacheStatsSnapshot>,
    /// Converged per-class magazine capacities, if the stack has a cache.
    pub capacities: Option<Vec<(usize, usize)>>,
    /// Per-node service shares (empty for single-arena stacks).
    pub nodes: Vec<NodeShare>,
    /// Per-class fragmentation counters, if the stack has a slab layer
    /// (committed-over-requested ratio, live pages, passthrough traffic).
    pub frag: Option<FragStatsSnapshot>,
    /// Facade byte shares and realloc counters, if the stack has a facade.
    pub facade: Option<FacadeShare>,
    /// Tree occupancy (per-level fill, free-block runs, external
    /// fragmentation), if the backend exposes a status tree.
    pub occupancy: Option<OccupancySnapshot>,
    /// Committed-versus-managed memory figures and decommit-scrubber
    /// counters, if the stack owns a [`nbbs::BuddyRegion`].
    pub memory: Option<MemoryStatsSnapshot>,
    /// Tail-latency summaries per recorded operation kind (only kinds with
    /// at least one sample appear; ordered by [`OpKind::ALL`]).
    pub latency: Vec<(OpKind, LatencyPercentiles)>,
}

impl StackSnapshot {
    /// The latency summary of one kind, if it recorded any samples.
    pub fn latency_of(&self, kind: OpKind) -> Option<&LatencyPercentiles> {
        self.latency
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p)
    }

    /// Renders the snapshot as an aligned text table — the one report
    /// format every binary in the workspace prints.
    pub fn text_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== nbbs stack: {} ==", self.label);
        if let Some(f) = &self.facade {
            // Byte counters live on the global allocator; facades observed
            // without them would render a meaningless "0 B / 0 B" line.
            if f.buddy_bytes + f.system_bytes > 0 {
                let _ = writeln!(
                    out,
                    "  facade   {} B buddy / {} B system ({:.1}% buddy share)",
                    f.buddy_bytes,
                    f.system_bytes,
                    f.buddy_share() * 100.0
                );
            }
            let _ = writeln!(
                out,
                "  facade   realloc: {} grows in place, {} moved ({:.1}% in place); \
                 {} shrinks in place, {} moved",
                f.grows_in_place,
                f.grows_moved,
                f.grow_in_place_rate() * 100.0,
                f.shrinks_in_place,
                f.shrinks_moved
            );
            if f.requested_bytes > 0 {
                let _ = writeln!(
                    out,
                    "  facade   {:.2} granted/requested ({} B granted over {} B asked)",
                    f.granted_over_requested(),
                    f.granted_bytes,
                    f.requested_bytes
                );
            }
            if f.system_failovers + f.reserve_hits + f.reserve_refills > 0 {
                let _ = writeln!(
                    out,
                    "  facade   degraded: {} system failovers, \
                     {} reserve hits, {} reserve refills",
                    f.system_failovers, f.reserve_hits, f.reserve_refills
                );
            }
        }
        if let Some(frag) = &self.frag {
            let _ = writeln!(
                out,
                "  slab     {:.2} committed/requested ({} B over {} B), {} live objects, \
                 {} pages live, {} retired, {} passthrough",
                frag.ratio(),
                frag.bytes_committed(),
                frag.bytes_requested(),
                frag.live_objects(),
                frag.pages_live,
                frag.pages_retired,
                frag.passthrough_allocs
            );
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                out,
                "  cache    {:.1}% hit rate over {} allocations \
                 ({} refilled, {} flushed, {} drained)",
                c.hit_rate() * 100.0,
                c.alloc_requests(),
                c.refilled,
                c.flushed,
                c.drained
            );
            let _ = writeln!(
                out,
                "  cache    depot: {} exchanges over {} shards, {} spills, {} steals; \
                 resize +{}/-{}",
                c.depot_exchanges,
                c.depot_shards,
                c.depot_spills,
                c.depot_steals,
                c.resize_grows,
                c.resize_shrinks
            );
        }
        if let Some(caps) = &self.capacities {
            let rendered: Vec<String> = caps
                .iter()
                .map(|(class, cap)| format!("{class}B\u{d7}{cap}"))
                .collect();
            let _ = writeln!(
                out,
                "  cache    magazine capacities: {}",
                rendered.join(" ")
            );
        }
        let ops = &self.backend_ops;
        if ops.allocs + ops.frees + ops.cas_ops != 0 {
            let _ = writeln!(
                out,
                "  backend  {} allocs, {} frees, {} failed; {} CAS \
                 ({:.2} per op, {:.1}% failed), {} skipped",
                ops.allocs,
                ops.frees,
                ops.failed_allocs,
                ops.cas_ops,
                ops.cas_per_op(),
                ops.cas_failure_rate() * 100.0,
                ops.nodes_skipped
            );
        }
        if ops.has_level_contention() {
            let last = (0..CAS_LEVELS)
                .rev()
                .find(|&i| ops.cas_failures_by_level[i] != 0)
                .unwrap_or(0);
            let bins: Vec<String> = (0..=last)
                .map(|i| format!("L{i}:{}", ops.cas_failures_by_level[i]))
                .collect();
            let _ = writeln!(out, "  backend  CAS failures by level: {}", bins.join(" "));
        }
        if let Some(occ) = &self.occupancy {
            let heat: Vec<String> = occ
                .levels
                .iter()
                .map(|l| format!("{}:{:>3.0}%", fmt_size(l.chunk_size), l.fill() * 100.0))
                .collect();
            let _ = writeln!(out, "  tree     occupancy by chunk: {}", heat.join(" "));
            let _ = writeln!(
                out,
                "  tree     free: {} B in {} run(s), largest {} B \
                 (external frag {:.2})",
                occ.total_free_bytes,
                occ.free_blocks,
                occ.largest_free_block,
                occ.external_frag()
            );
        }
        if let Some(m) = &self.memory {
            let _ = writeln!(
                out,
                "  memory   {} B committed of {} B managed ({:.1}%), {} B decommitted",
                m.committed_bytes,
                m.managed_bytes,
                m.committed_ratio() * 100.0,
                m.decommitted_bytes
            );
            if m.scrub_passes + m.trimmed_pages > 0 {
                let _ = writeln!(
                    out,
                    "  scrub    {} passes: {} blocks / {} B decommitted, \
                     {} B recommitted, {} pages trimmed",
                    m.scrub_passes,
                    m.scrub_blocks,
                    m.scrub_bytes,
                    m.recommitted_bytes,
                    m.trimmed_pages
                );
            }
        }
        if !self.nodes.is_empty() {
            let total_served: u64 = self.nodes.iter().map(NodeShare::served).sum();
            for n in &self.nodes {
                let share = if total_served == 0 {
                    0.0
                } else {
                    n.served() as f64 / total_served as f64 * 100.0
                };
                let _ = writeln!(
                    out,
                    "  node {}:  {share:>5.1}% of allocations ({} local, {} remote-fallback, \
                     {} failed, {} B live)",
                    n.node, n.local_allocs, n.remote_allocs, n.failed_allocs, n.allocated_bytes
                );
            }
        }
        for (kind, p) in &self.latency {
            let _ = writeln!(
                out,
                "  latency  {:<12} p50 {:>8} p90 {:>8} p99 {:>8} p99.9 {:>8} max {:>8} \
                 (n={})",
                kind.name(),
                fmt_ns(p.p50_ns),
                fmt_ns(p.p90_ns),
                fmt_ns(p.p99_ns),
                fmt_ns(p.p999_ns),
                fmt_ns(p.max_ns),
                p.count
            );
        }
        out
    }

    /// Renders the snapshot as one JSON object (one line, no trailing
    /// newline) — the exposition format of `BENCH_*.json` sidecar records.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"label\":\"{}\"", crate::json::esc(&self.label));
        let ops = &self.backend_ops;
        let _ = write!(
            out,
            ",\"backend_ops\":{{\"allocs\":{},\"frees\":{},\"failed_allocs\":{},\
             \"cas_ops\":{},\"cas_failures\":{},\"nodes_skipped\":{}",
            ops.allocs,
            ops.frees,
            ops.failed_allocs,
            ops.cas_ops,
            ops.cas_failures,
            ops.nodes_skipped
        );
        if ops.has_level_contention() {
            let bins: Vec<String> = ops
                .cas_failures_by_level
                .iter()
                .map(|c| c.to_string())
                .collect();
            let _ = write!(out, ",\"cas_failures_by_level\":[{}]", bins.join(","));
        }
        out.push('}');
        if let Some(c) = &self.cache {
            let _ = write!(
                out,
                ",\"cache\":{{\"hits\":{},\"misses\":{},\"cached_frees\":{},\"flushed\":{},\
                 \"refilled\":{},\"depot_exchanges\":{},\"drained\":{},\"depot_spills\":{},\
                 \"depot_steals\":{},\"resize_grows\":{},\"resize_shrinks\":{},\
                 \"transient_retries\":{},\"orphan_rescues\":{},\"depot_shards\":{}}}",
                c.hits,
                c.misses,
                c.cached_frees,
                c.flushed,
                c.refilled,
                c.depot_exchanges,
                c.drained,
                c.depot_spills,
                c.depot_steals,
                c.resize_grows,
                c.resize_shrinks,
                c.transient_retries,
                c.orphan_rescues,
                c.depot_shards
            );
        }
        if let Some(caps) = &self.capacities {
            let rendered: Vec<String> = caps
                .iter()
                .map(|(class, cap)| format!("[{class},{cap}]"))
                .collect();
            let _ = write!(out, ",\"magazine_capacities\":[{}]", rendered.join(","));
        }
        if let Some(frag) = &self.frag {
            let classes: Vec<String> = frag
                .classes
                .iter()
                .map(|c| {
                    format!(
                        "{{\"class_size\":{},\"bytes_requested\":{},\"bytes_committed\":{},\
                         \"live_objects\":{}}}",
                        c.class_size, c.bytes_requested, c.bytes_committed, c.live_objects
                    )
                })
                .collect();
            let _ = write!(
                out,
                ",\"frag\":{{\"ratio\":{},\"bytes_requested\":{},\"bytes_committed\":{},\
                 \"pages_live\":{},\"pages_retired\":{},\"passthrough_allocs\":{},\
                 \"classes\":[{}]}}",
                crate::json::num(frag.ratio()),
                frag.bytes_requested(),
                frag.bytes_committed(),
                frag.pages_live,
                frag.pages_retired,
                frag.passthrough_allocs,
                classes.join(",")
            );
        }
        if !self.nodes.is_empty() {
            let rendered: Vec<String> = self
                .nodes
                .iter()
                .map(|n| {
                    format!(
                        "{{\"node\":{},\"allocated_bytes\":{},\"local_allocs\":{},\
                         \"remote_allocs\":{},\"failed_allocs\":{}}}",
                        n.node, n.allocated_bytes, n.local_allocs, n.remote_allocs, n.failed_allocs
                    )
                })
                .collect();
            let _ = write!(out, ",\"nodes\":[{}]", rendered.join(","));
        }
        if let Some(f) = &self.facade {
            let _ = write!(
                out,
                ",\"facade\":{{\"buddy_bytes\":{},\"system_bytes\":{},\"grows_in_place\":{},\
                 \"grows_moved\":{},\"shrinks_in_place\":{},\"shrinks_moved\":{},\
                 \"system_failovers\":{},\"reserve_hits\":{},\"reserve_refills\":{},\
                 \"requested_bytes\":{},\"granted_bytes\":{},\"granted_over_requested\":{}}}",
                f.buddy_bytes,
                f.system_bytes,
                f.grows_in_place,
                f.grows_moved,
                f.shrinks_in_place,
                f.shrinks_moved,
                f.system_failovers,
                f.reserve_hits,
                f.reserve_refills,
                f.requested_bytes,
                f.granted_bytes,
                crate::json::num(f.granted_over_requested())
            );
        }
        if let Some(occ) = &self.occupancy {
            let levels: Vec<String> = occ
                .levels
                .iter()
                .map(|l| {
                    format!(
                        "{{\"chunk_size\":{},\"nodes\":{},\"free\":{},\"occupied\":{},\
                         \"busy\":{},\"fill\":{}}}",
                        l.chunk_size,
                        l.nodes,
                        l.free,
                        l.occupied,
                        l.busy,
                        crate::json::num(l.fill())
                    )
                })
                .collect();
            let _ = write!(
                out,
                ",\"occupancy\":{{\"total_free_bytes\":{},\"largest_free_block\":{},\
                 \"free_blocks\":{},\"external_frag\":{},\"merged_trees\":{},\
                 \"levels\":[{}]}}",
                occ.total_free_bytes,
                occ.largest_free_block,
                occ.free_blocks,
                crate::json::num(occ.external_frag()),
                occ.merged_trees,
                levels.join(",")
            );
        }
        if let Some(m) = &self.memory {
            let _ = write!(
                out,
                ",\"memory\":{{\"managed_bytes\":{},\"committed_bytes\":{},\
                 \"decommitted_bytes\":{},\"committed_ratio\":{},\"scrub_passes\":{},\
                 \"scrub_blocks\":{},\"scrub_bytes\":{},\"recommitted_bytes\":{},\
                 \"trimmed_pages\":{}}}",
                m.managed_bytes,
                m.committed_bytes,
                m.decommitted_bytes,
                crate::json::num(m.committed_ratio()),
                m.scrub_passes,
                m.scrub_blocks,
                m.scrub_bytes,
                m.recommitted_bytes,
                m.trimmed_pages
            );
        }
        if !self.latency.is_empty() {
            let rendered: Vec<String> = self
                .latency
                .iter()
                .map(|(k, p)| format!("\"{}\":{}", k.name(), p.to_json()))
                .collect();
            let _ = write!(out, ",\"latency\":{{{}}}", rendered.join(","));
        }
        out.push('}');
        out
    }
}

/// Formats a byte size compactly for the occupancy heatmap row.
fn fmt_size(bytes: usize) -> String {
    if bytes >= (1 << 20) && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= (1 << 10) && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Formats a nanosecond figure for the text table (`-` for NaN).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "-".to_string()
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Collects the per-layer snapshots of one allocator stack and produces
/// [`StackSnapshot`]s.
///
/// ```
/// use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel};
/// use nbbs_obs::MetricsRegistry;
///
/// let tree = NbbsFourLevel::new(BuddyConfig::new(1 << 20, 64, 1 << 16).unwrap());
/// let a = tree.alloc(100).unwrap();
/// tree.dealloc(a);
///
/// let mut reg = MetricsRegistry::new("example");
/// reg.observe_backend(&tree);
/// let snap = reg.snapshot();
/// println!("{}", snap.text_table());
/// assert!(snap.to_json().starts_with("{\"label\":\"example\""));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    label: String,
    backend_ops: OpStatsSnapshot,
    cache: Option<CacheStatsSnapshot>,
    capacities: Option<Vec<(usize, usize)>>,
    nodes: Vec<NodeShare>,
    frag: Option<FragStatsSnapshot>,
    facade: Option<FacadeShare>,
    occupancy: Option<OccupancySnapshot>,
    memory: Option<MemoryStatsSnapshot>,
    recorder: Option<Arc<Recorder>>,
}

impl MetricsRegistry {
    /// Creates an empty registry for the stack called `label`.
    pub fn new(label: impl Into<String>) -> Self {
        MetricsRegistry {
            label: label.into(),
            ..Default::default()
        }
    }

    /// Pulls everything a `dyn BuddyBackend` exposes: operation counters,
    /// cache counters, magazine capacities and slab fragmentation counters.
    pub fn observe_backend(&mut self, backend: &dyn BuddyBackend) -> &mut Self {
        self.backend_ops = backend.stats();
        self.cache = backend.cache_stats();
        self.capacities = backend.cache_class_capacities();
        self.frag = backend.frag_stats();
        self.occupancy = backend.occupancy();
        self
    }

    /// Sets the backend operation counters directly.
    pub fn set_backend_ops(&mut self, ops: OpStatsSnapshot) -> &mut Self {
        self.backend_ops = ops;
        self
    }

    /// Sets the cache counters directly.
    pub fn set_cache(&mut self, cache: Option<CacheStatsSnapshot>) -> &mut Self {
        self.cache = cache;
        self
    }

    /// Sets the per-class magazine capacities directly.
    pub fn set_capacities(&mut self, caps: Option<Vec<(usize, usize)>>) -> &mut Self {
        self.capacities = caps;
        self
    }

    /// Sets the per-node service shares.
    pub fn set_nodes(&mut self, nodes: Vec<NodeShare>) -> &mut Self {
        self.nodes = nodes;
        self
    }

    /// Sets the slab layer's fragmentation counters directly.
    pub fn set_frag(&mut self, frag: Option<FragStatsSnapshot>) -> &mut Self {
        self.frag = frag;
        self
    }

    /// Sets the facade byte shares and realloc counters.
    pub fn set_facade(&mut self, facade: FacadeShare) -> &mut Self {
        self.facade = Some(facade);
        self
    }

    /// Sets the tree occupancy snapshot directly.
    pub fn set_occupancy(&mut self, occupancy: Option<OccupancySnapshot>) -> &mut Self {
        self.occupancy = occupancy;
        self
    }

    /// Sets the committed-memory and scrubber figures (from
    /// `BuddyRegion::memory_stats`).
    pub fn set_memory(&mut self, memory: Option<MemoryStatsSnapshot>) -> &mut Self {
        self.memory = memory;
        self
    }

    /// Attaches the stack's latency recorder; its histograms are merged
    /// into every subsequent [`MetricsRegistry::snapshot`].
    pub fn set_recorder(&mut self, recorder: Arc<Recorder>) -> &mut Self {
        self.recorder = Some(recorder);
        self
    }

    /// Produces the unified snapshot (histograms are merged now).
    pub fn snapshot(&self) -> StackSnapshot {
        let mut latency = Vec::new();
        if let Some(rec) = &self.recorder {
            for kind in OpKind::ALL {
                let snap = rec.snapshot(kind);
                if !snap.is_empty() {
                    latency.push((kind, snap.percentiles()));
                }
            }
        }
        StackSnapshot {
            label: self.label.clone(),
            backend_ops: self.backend_ops,
            cache: self.cache,
            capacities: self.capacities.clone(),
            nodes: self.nodes.clone(),
            frag: self.frag.clone(),
            facade: self.facade,
            occupancy: self.occupancy.clone(),
            memory: self.memory,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::OpOutcome;

    #[test]
    fn snapshot_unifies_every_layer() {
        let rec = Arc::new(Recorder::new());
        rec.record_cycles(OpKind::Alloc, 120, 7, OpOutcome::Ok);
        rec.record_cycles(OpKind::Free, 80, 7, OpOutcome::Ok);
        let mut reg = MetricsRegistry::new("unit");
        reg.set_backend_ops(OpStatsSnapshot {
            allocs: 10,
            frees: 9,
            cas_ops: 40,
            cas_failures: 4,
            ..Default::default()
        })
        .set_cache(Some(CacheStatsSnapshot {
            hits: 90,
            misses: 10,
            refilled: 10,
            depot_shards: 4,
            ..Default::default()
        }))
        .set_capacities(Some(vec![(64, 8), (128, 16)]))
        .set_nodes(vec![
            NodeShare {
                node: 0,
                local_allocs: 80,
                remote_allocs: 5,
                ..Default::default()
            },
            NodeShare {
                node: 1,
                local_allocs: 15,
                ..Default::default()
            },
        ])
        .set_facade(FacadeShare {
            buddy_bytes: 1000,
            system_bytes: 0,
            grows_in_place: 3,
            grows_moved: 1,
            system_failovers: 2,
            reserve_hits: 4,
            reserve_refills: 3,
            ..Default::default()
        })
        .set_recorder(Arc::clone(&rec));
        let snap = reg.snapshot();
        assert_eq!(snap.latency.len(), 2, "alloc and free recorded");
        assert!(snap.latency_of(OpKind::Alloc).is_some());
        assert!(snap.latency_of(OpKind::Grow).is_none());

        let table = snap.text_table();
        assert!(table.contains("== nbbs stack: unit =="), "{table}");
        assert!(table.contains("100.0% buddy share"), "{table}");
        assert!(table.contains("90.0% hit rate"), "{table}");
        assert!(table.contains("node 0"), "{table}");
        assert!(table.contains("latency  alloc"), "{table}");
        assert!(table.contains("10 allocs"), "{table}");
        assert!(
            table.contains("degraded: 2 system failovers, 4 reserve hits, 3 reserve refills"),
            "{table}"
        );

        let json = snap.to_json();
        assert!(json.starts_with("{\"label\":\"unit\""), "{json}");
        assert!(json.contains("\"cache\":{\"hits\":90"), "{json}");
        assert!(json.contains("\"nodes\":[{\"node\":0"), "{json}");
        assert!(json.contains("\"facade\":{\"buddy_bytes\":1000"), "{json}");
        assert!(json.contains("\"system_failovers\":2"), "{json}");
        assert!(json.contains("\"reserve_hits\":4"), "{json}");
        assert!(json.contains("\"transient_retries\":0"), "{json}");
        assert!(
            json.contains("\"latency\":{\"alloc\":{\"count\":1"),
            "{json}"
        );
        assert!(
            json.contains("\"magazine_capacities\":[[64,8],[128,16]]"),
            "{json}"
        );
        assert!(!json.contains('\n'));
    }

    #[test]
    fn empty_registry_renders_minimal_output() {
        let snap = MetricsRegistry::new("bare").snapshot();
        let table = snap.text_table();
        assert!(table.contains("bare"));
        assert!(!table.contains("facade"), "no facade section: {table}");
        assert!(!table.contains("cache"), "no cache section: {table}");
        let json = snap.to_json();
        assert!(json.contains("\"backend_ops\""));
        assert!(!json.contains("\"cache\""));
        assert!(!json.contains("\"latency\""));
    }

    #[test]
    fn frag_counters_render_when_present() {
        let mut reg = MetricsRegistry::new("slab");
        reg.set_frag(Some(FragStatsSnapshot {
            classes: vec![nbbs::FragClassSnapshot {
                class_size: 40,
                bytes_requested: 400,
                bytes_committed: 440,
                live_objects: 3,
            }],
            pages_live: 2,
            pages_retired: 1,
            passthrough_allocs: 7,
        }));
        let snap = reg.snapshot();
        let table = snap.text_table();
        assert!(
            table.contains("slab     1.10 committed/requested"),
            "{table}"
        );
        assert!(
            table.contains("2 pages live, 1 retired, 7 passthrough"),
            "{table}"
        );
        let json = snap.to_json();
        assert!(json.contains("\"frag\":{\"ratio\":1.100"), "{json}");
        assert!(
            json.contains("\"classes\":[{\"class_size\":40,\"bytes_requested\":400"),
            "{json}"
        );
        // Slab-free stacks carry no frag section at all.
        let bare = MetricsRegistry::new("bare").snapshot();
        assert!(bare.frag.is_none());
        assert!(!bare.to_json().contains("\"frag\""));
    }

    #[test]
    fn occupancy_and_request_accounting_render() {
        use nbbs::{BuddyConfig, NbbsFourLevel};
        let tree = NbbsFourLevel::new(BuddyConfig::new(1 << 16, 64, 1 << 12).unwrap());
        let hold = tree.alloc(4096).unwrap();
        let mut reg = MetricsRegistry::new("occ");
        reg.observe_backend(&tree).set_facade(FacadeShare {
            requested_bytes: 4000,
            granted_bytes: 4096,
            ..Default::default()
        });
        let snap = reg.snapshot();
        assert!(snap.occupancy.is_some(), "trees report occupancy");
        let table = snap.text_table();
        assert!(table.contains("occupancy by chunk: 4K:"), "{table}");
        assert!(table.contains("external frag"), "{table}");
        assert!(table.contains("1.02 granted/requested"), "{table}");
        let json = snap.to_json();
        assert!(
            json.contains("\"occupancy\":{\"total_free_bytes\":"),
            "{json}"
        );
        assert!(json.contains("\"requested_bytes\":4000"), "{json}");
        assert!(json.contains("\"granted_over_requested\":1.024"), "{json}");
        tree.dealloc(hold);
        // Backends without a tree stay silent.
        let bare = MetricsRegistry::new("bare").snapshot();
        assert!(bare.occupancy.is_none());
        assert!(!bare.to_json().contains("\"occupancy\""));
    }

    #[test]
    fn memory_and_scrub_sections_render_when_present() {
        let mut reg = MetricsRegistry::new("mem");
        reg.set_memory(Some(MemoryStatsSnapshot {
            managed_bytes: 1 << 20,
            committed_bytes: 1 << 18,
            decommitted_bytes: (1 << 20) - (1 << 18),
            scrub_passes: 3,
            scrub_blocks: 12,
            scrub_bytes: 786_432,
            recommitted_bytes: 4096,
            trimmed_pages: 2,
        }));
        let snap = reg.snapshot();
        let table = snap.text_table();
        assert!(
            table.contains("memory   262144 B committed of 1048576 B managed (25.0%)"),
            "{table}"
        );
        assert!(table.contains("scrub    3 passes"), "{table}");
        assert!(table.contains("2 pages trimmed"), "{table}");
        let json = snap.to_json();
        assert!(
            json.contains("\"memory\":{\"managed_bytes\":1048576,\"committed_bytes\":262144"),
            "{json}"
        );
        assert!(json.contains("\"scrub_passes\":3"), "{json}");
        // Regions that never scrubbed hide the scrub row but keep the gauge.
        let mut quiet = MetricsRegistry::new("quiet");
        quiet.set_memory(Some(MemoryStatsSnapshot {
            managed_bytes: 4096,
            committed_bytes: 4096,
            ..Default::default()
        }));
        let table = quiet.snapshot().text_table();
        assert!(table.contains("memory   4096 B committed"), "{table}");
        assert!(!table.contains("scrub "), "{table}");
        // Stacks without a region stay silent.
        let bare = MetricsRegistry::new("bare").snapshot();
        assert!(bare.memory.is_none());
        assert!(!bare.to_json().contains("\"memory\""));
    }

    #[test]
    fn fmt_size_picks_natural_units() {
        assert_eq!(fmt_size(64), "64B");
        assert_eq!(fmt_size(4096), "4K");
        assert_eq!(fmt_size(1 << 21), "2M");
        assert_eq!(fmt_size(1536), "1536B");
    }

    #[test]
    fn level_contention_appears_when_present() {
        let mut ops = OpStatsSnapshot::default();
        ops.cas_failures_by_level[2] = 5;
        ops.cas_ops = 10;
        let mut reg = MetricsRegistry::new("heat");
        reg.set_backend_ops(ops);
        let snap = reg.snapshot();
        assert!(snap.text_table().contains("L2:5"), "{}", snap.text_table());
        assert!(snap.to_json().contains("\"cas_failures_by_level\":[0,0,5,"));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(f64::NAN), "-");
        assert_eq!(fmt_ns(512.0), "512ns");
        assert_eq!(fmt_ns(2_500.0), "2.50us");
        assert_eq!(fmt_ns(3_200_000.0), "3.20ms");
    }
}
