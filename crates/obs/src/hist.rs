//! Lock-free log-bucketed latency histograms.
//!
//! The paper evaluates the allocators on *throughput* (Figures 8–13); the
//! production north star of this reproduction is judged on p99/p99.9.  This
//! module provides the missing distribution data: an HDR-style log-linear
//! histogram over `nbbs_sync::cycles` timestamps with **two sub-buckets per
//! octave** — every bucket spans at most 50% of its lower bound, so a
//! percentile estimate read back from a bucket is off by less than one
//! bucket width (verified against a sorted-`Vec` oracle in the tests).
//!
//! Recording is a single relaxed `fetch_add` on a per-thread shard (plus a
//! relaxed `fetch_max` for the exact maximum); shards are only merged when a
//! snapshot is taken.  There is no locking anywhere, so the histogram can be
//! updated from allocator hot paths — including re-entrant ones — without
//! changing their progress guarantees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use nbbs_sync::{thread_ordinal, CachePadded, CycleTimer};

/// Number of buckets: 64 octaves × 2 sub-buckets covers the full `u64`
/// range (values 0 and 1 get the two exact low buckets).
pub const BUCKETS: usize = 128;

/// Number of independently updated shards (power of two; threads map onto
/// shards by `thread_ordinal() % SHARDS`).
pub const SHARDS: usize = 16;

/// Maps a cycle count to its bucket index (0..[`BUCKETS`]).
///
/// Values 0 and 1 are exact; larger values land in bucket
/// `2·⌊log2 v⌋ + second-most-significant-bit`, i.e. two sub-buckets per
/// octave.  Monotone in `v`, and `u64::MAX` maps to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    msb * 2 + ((v >> (msb - 1)) & 1) as usize
}

/// The smallest value that maps to bucket `idx` (the inverse of
/// [`bucket_index`]; percentile estimates report this bound).
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx < 2 {
        return idx as u64;
    }
    let octave = idx / 2;
    (1u64 << octave) + (idx as u64 % 2) * (1u64 << (octave - 1))
}

/// The largest value that maps to bucket `idx`.
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if idx + 1 == BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1) - 1
    }
}

/// One shard of counters, updated by the threads that hash onto it.
struct Shard {
    counts: [AtomicU64; BUCKETS],
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
        }
    }
}

/// A sharded, lock-free, log-bucketed histogram of `u64` samples
/// (clock cycles in this crate's use, but the math is unit-agnostic).
///
/// ```
/// use nbbs_obs::LatencyHistogram;
///
/// let h = LatencyHistogram::new();
/// for v in [100u64, 200, 400, 100_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.total(), 4);
/// assert_eq!(snap.max, 100_000);
/// let p50 = snap.value_at_quantile(0.5).unwrap();
/// assert!(p50 <= 200, "estimate is the bucket's lower bound");
/// ```
pub struct LatencyHistogram {
    shards: Box<[CachePadded<Shard>]>,
}

impl LatencyHistogram {
    /// Creates an empty histogram with [`SHARDS`] shards.
    pub fn new() -> Self {
        LatencyHistogram {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(Shard::new()))
                .collect(),
        }
    }

    /// Records one sample on the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_with_bucket(v, bucket_index(v));
    }

    /// Records one sample whose bucket the caller has already computed
    /// (the flight recorder reuses the index).
    #[inline]
    pub fn record_with_bucket(&self, v: u64, bucket: usize) {
        let shard = &self.shards[thread_ordinal() % SHARDS];
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges every shard into one point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for shard in self.shards.iter() {
            for (i, c) in shard.counts.iter().enumerate() {
                out.counts[i] += c.load(Ordering::Relaxed);
            }
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A merged point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_low`] for the bucket bounds).
    pub counts: [u64; BUCKETS],
    /// Exact largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Accumulates `other` into `self`, bucket by bucket (associative and
    /// commutative — the shard-merge and cross-instance merge operation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.max = self.max.max(other.max);
    }

    /// The lower bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`), or `None` if the histogram is empty.
    ///
    /// The estimate under-reports by strictly less than one bucket width
    /// (≤ 50% of the value); the exact maximum is available in
    /// [`HistogramSnapshot::max`].
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        if rank == total {
            // The top rank is the maximum, which is tracked exactly.
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // A non-empty bucket holds samples ≥ its low bound, so the
                // clamp is a no-op in practice; it guarantees the estimate
                // never over-reports the exact maximum.
                return Some(bucket_low(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Converts the tail quantiles to nanoseconds via the calibrated TSC
    /// frequency ([`tsc_hz`]).  Empty histograms yield NaN percentiles
    /// (serialized as `null` by the JSON exposition).
    pub fn percentiles(&self) -> LatencyPercentiles {
        self.percentiles_at(tsc_hz())
    }

    /// [`HistogramSnapshot::percentiles`] with an explicit cycle frequency
    /// (tests use 1 GHz so cycles and nanoseconds coincide).
    pub fn percentiles_at(&self, hz: f64) -> LatencyPercentiles {
        let to_ns = |c: Option<u64>| match c {
            Some(c) if hz > 0.0 => c as f64 * 1e9 / hz,
            _ => f64::NAN,
        };
        let count = self.total();
        LatencyPercentiles {
            count,
            p50_ns: to_ns(self.value_at_quantile(0.50)),
            p90_ns: to_ns(self.value_at_quantile(0.90)),
            p99_ns: to_ns(self.value_at_quantile(0.99)),
            p999_ns: to_ns(self.value_at_quantile(0.999)),
            max_ns: to_ns(if count == 0 { None } else { Some(self.max) }),
        }
    }
}

/// Tail-latency summary of one histogram, calibrated to nanoseconds.
///
/// All fields are NaN when `count == 0`; the JSON helpers in
/// [`crate::json`] serialize non-finite values as `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Number of samples the percentiles summarize.
    pub count: u64,
    /// Median, in nanoseconds.
    pub p50_ns: f64,
    /// 90th percentile, in nanoseconds.
    pub p90_ns: f64,
    /// 99th percentile, in nanoseconds.
    pub p99_ns: f64,
    /// 99.9th percentile, in nanoseconds.
    pub p999_ns: f64,
    /// Exact maximum, in nanoseconds.
    pub max_ns: f64,
}

impl LatencyPercentiles {
    /// The empty summary (count 0, NaN percentiles).
    pub fn empty() -> Self {
        LatencyPercentiles {
            count: 0,
            p50_ns: f64::NAN,
            p90_ns: f64::NAN,
            p99_ns: f64::NAN,
            p999_ns: f64::NAN,
            max_ns: f64::NAN,
        }
    }

    /// Whether any sample backs this summary.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Renders as one JSON object (`null` for non-finite fields).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
             \"max_ns\":{}}}",
            self.count,
            crate::json::num(self.p50_ns),
            crate::json::num(self.p90_ns),
            crate::json::num(self.p99_ns),
            crate::json::num(self.p999_ns),
            crate::json::num(self.max_ns),
        )
    }
}

impl Default for LatencyPercentiles {
    fn default() -> Self {
        Self::empty()
    }
}

/// The calibrated TSC frequency in Hz, measured once per process by timing
/// a ~20 ms sleep against both clocks (`CycleTimer::estimated_frequency_hz`)
/// and cached.  Falls back to 1 GHz if the measurement is implausible —
/// which also makes the non-x86_64 nanosecond clock exact by construction.
pub fn tsc_hz() -> f64 {
    static HZ: OnceLock<f64> = OnceLock::new();
    *HZ.get_or_init(|| {
        let timer = CycleTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let hz = timer.estimated_frequency_hz();
        if (1e8..1e11).contains(&hz) {
            hz
        } else {
            1e9
        }
    })
}

/// Converts a cycle count to nanoseconds via [`tsc_hz`].
pub fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 * 1e9 / tsc_hz()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_the_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(7), 5);
        assert_eq!(bucket_index(8), 6);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_low(1), 1);
        assert_eq!(bucket_low(BUCKETS - 1), (1 << 63) + (1 << 62));
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_and_inverts_bounds() {
        for idx in 0..BUCKETS {
            let low = bucket_low(idx);
            let high = bucket_high(idx);
            assert!(low <= high);
            assert_eq!(bucket_index(low), idx, "low bound of {idx}");
            assert_eq!(bucket_index(high), idx, "high bound of {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(bucket_low(idx + 1), high + 1, "buckets tile the range");
            }
        }
    }

    #[test]
    fn bucket_width_is_at_most_half_the_low_bound() {
        for idx in 4..BUCKETS {
            let low = bucket_low(idx);
            let width = bucket_high(idx) - low + 1;
            assert!(
                width as u128 * 2 <= low as u128,
                "bucket {idx}: width {width} vs low {low}"
            );
        }
    }

    #[test]
    fn empty_histogram_has_nan_percentiles() {
        let h = LatencyHistogram::new();
        let snap = h.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.value_at_quantile(0.5), None);
        let p = snap.percentiles_at(1e9);
        assert!(p.is_empty());
        assert!(p.p50_ns.is_nan() && p.p99_ns.is_nan() && p.max_ns.is_nan());
        assert!(p.to_json().contains("\"p50_ns\":null"));
        assert!(p.to_json().contains("\"max_ns\":null"));
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 samples: 990 at ~100 cycles, 10 at ~100k cycles.
        for _ in 0..990 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 1000);
        assert_eq!(snap.max, 100_000);
        let p50 = snap.value_at_quantile(0.50).unwrap();
        let p99 = snap.value_at_quantile(0.99).unwrap();
        let p999 = snap.value_at_quantile(0.999).unwrap();
        assert_eq!(bucket_index(p50), bucket_index(100));
        assert_eq!(bucket_index(p99), bucket_index(100), "p99 is still fast");
        assert_eq!(
            bucket_index(p999),
            bucket_index(100_000),
            "p99.9 is the tail"
        );
        // At 1 GHz the nanosecond summary mirrors the cycle values.
        let p = snap.percentiles_at(1e9);
        assert_eq!(p.count, 1000);
        assert!((p.max_ns - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn merge_accumulates_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        b.record(10);
        b.record(1 << 40);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.total(), 3);
        assert_eq!(sa.max, 1 << 40);
        assert_eq!(sa.counts[bucket_index(10)], 2);
    }

    #[test]
    fn calibration_is_plausible_and_stable() {
        let hz = tsc_hz();
        assert!((1e8..1e11).contains(&hz), "tsc_hz() = {hz}");
        assert_eq!(tsc_hz(), hz, "cached after first measurement");
        assert!(cycles_to_ns(0) == 0.0);
    }
}
