//! The flight recorder: fixed-capacity ring buffers of recent operations.
//!
//! PR 2's coalescing soak found a one-in-140k anomaly that took a seeded
//! `REPRO:` line to chase; what was missing was the *trailing op history* of
//! the threads involved.  The flight recorder keeps exactly that: a small
//! per-thread-group ring of the most recent operations (kind, size class or
//! level, latency bucket, outcome), cheap enough to leave on, and dumpable
//! from `atexit` hooks, panic paths and failing assertions.
//!
//! Each event packs into a single `AtomicU64` (stores are torn-free by
//! construction) with the kind stored as `kind + 1` so an all-zero word is
//! the unambiguous "empty slot" sentinel.  Rings are selected by
//! `thread_ordinal() % RINGS`, the head is a relaxed `fetch_add`, and slots
//! wrap — a dump is best-effort under concurrent writes, which is exactly
//! what a crash-time artifact can promise.

use std::sync::atomic::{AtomicU64, Ordering};

use nbbs_sync::{thread_ordinal, CachePadded};

use crate::hist::{bucket_high, bucket_low};
use crate::recorder::{OpKind, OpOutcome};

/// Number of rings (power of two; threads map onto rings by ordinal).
pub const FLIGHT_RINGS: usize = 8;

/// Events retained per ring (power of two).
pub const FLIGHT_CAPACITY: usize = 256;

fn encode(kind: OpKind, outcome: OpOutcome, bucket: u8, detail: u64) -> u64 {
    ((kind as u64 + 1) << 56)
        | ((outcome as u64) << 48)
        | ((bucket as u64) << 40)
        | (detail & ((1 << 40) - 1))
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What operation ran.
    pub kind: OpKind,
    /// Whether it succeeded.
    pub outcome: OpOutcome,
    /// Latency bucket index (see [`crate::hist::bucket_low`]).
    pub latency_bucket: u8,
    /// Small payload: size-class log2 for alloc/free, tree level for CAS
    /// events (40 bits).
    pub detail: u64,
}

impl FlightEvent {
    fn decode(word: u64) -> Option<FlightEvent> {
        let kind = OpKind::from_index(((word >> 56) as u8).checked_sub(1)?)?;
        let outcome = if (word >> 48) & 0xFF == 0 {
            OpOutcome::Ok
        } else {
            OpOutcome::Failed
        };
        Some(FlightEvent {
            kind,
            outcome,
            latency_bucket: ((word >> 40) & 0xFF) as u8,
            detail: word & ((1 << 40) - 1),
        })
    }

    /// The cycle range the latency bucket spans.
    pub fn latency_bounds(&self) -> (u64, u64) {
        let idx = (self.latency_bucket as usize).min(crate::hist::BUCKETS - 1);
        (bucket_low(idx), bucket_high(idx))
    }
}

struct Ring {
    head: AtomicU64,
    slots: [AtomicU64; FLIGHT_CAPACITY],
}

impl Ring {
    fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-capacity per-thread-group rings of recent operations.
pub struct FlightRecorder {
    rings: Box<[CachePadded<Ring>]>,
}

impl FlightRecorder {
    /// Creates empty rings.
    pub fn new() -> Self {
        FlightRecorder {
            rings: (0..FLIGHT_RINGS)
                .map(|_| CachePadded::new(Ring::new()))
                .collect(),
        }
    }

    /// Appends one event to the calling thread's ring.
    #[inline]
    pub fn push(&self, kind: OpKind, outcome: OpOutcome, bucket: u8, detail: u64) {
        let ring = &self.rings[thread_ordinal() % FLIGHT_RINGS];
        let i = ring.head.fetch_add(1, Ordering::Relaxed) as usize % FLIGHT_CAPACITY;
        ring.slots[i].store(encode(kind, outcome, bucket, detail), Ordering::Relaxed);
    }

    /// Decodes every ring, oldest event first, skipping empty slots.
    /// Returns `(ring_index, events)` pairs for non-empty rings.
    pub fn events(&self) -> Vec<(usize, Vec<FlightEvent>)> {
        let mut out = Vec::new();
        for (ri, ring) in self.rings.iter().enumerate() {
            let head = ring.head.load(Ordering::Relaxed) as usize;
            let mut events = Vec::new();
            for k in 0..FLIGHT_CAPACITY {
                // Oldest surviving slot is `head` itself once wrapped.
                let slot = (head + k) % FLIGHT_CAPACITY;
                let word = ring.slots[slot].load(Ordering::Relaxed);
                if let Some(ev) = FlightEvent::decode(word) {
                    events.push(ev);
                }
            }
            if !events.is_empty() {
                out.push((ri, events));
            }
        }
        out
    }

    /// Total events currently decodable across all rings.
    pub fn len(&self) -> usize {
        self.events().iter().map(|(_, e)| e.len()).sum()
    }

    /// Whether no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders a human-readable dump of every ring — the crash-time
    /// artifact format used by `exit_dump`, panic hooks and the coalescing
    /// soak's `REPRO:` path.  Consecutive identical events are run-length
    /// compressed (`×N`) so a steady-state ring reads as a few lines.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let rings = self.events();
        if rings.is_empty() {
            out.push_str("[flight] no recorded operations\n");
            return out;
        }
        for (ri, events) in rings {
            let _ = writeln!(out, "[flight] ring {ri}: last {} ops", events.len());
            let mut i = 0;
            while i < events.len() {
                let ev = events[i];
                let mut run = 1;
                while i + run < events.len() && events[i + run] == ev {
                    run += 1;
                }
                let (lo, hi) = ev.latency_bounds();
                let _ = writeln!(
                    out,
                    "[flight]   {:<12} {:<6} detail={:<4} {lo}..{hi} cyc{}",
                    ev.kind.name(),
                    if ev.outcome == OpOutcome::Ok {
                        "ok"
                    } else {
                        "FAILED"
                    },
                    ev.detail,
                    if run > 1 {
                        format!("  \u{d7}{run}")
                    } else {
                        String::new()
                    }
                );
                i += run;
            }
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_packed_word() {
        let ev = FlightEvent {
            kind: OpKind::CacheMiss,
            outcome: OpOutcome::Failed,
            latency_bucket: 77,
            detail: 0xAB_CDEF,
        };
        let word = encode(ev.kind, ev.outcome, ev.latency_bucket, ev.detail);
        assert_eq!(FlightEvent::decode(word), Some(ev));
        assert_eq!(FlightEvent::decode(0), None, "zero word is the empty slot");
    }

    #[test]
    fn rings_keep_the_most_recent_events() {
        let fr = FlightRecorder::new();
        assert!(fr.is_empty());
        // Overfill this thread's ring: only the newest CAPACITY survive.
        for i in 0..(FLIGHT_CAPACITY + 10) {
            fr.push(OpKind::Alloc, OpOutcome::Ok, 5, i as u64);
        }
        let rings = fr.events();
        assert_eq!(rings.len(), 1, "single thread writes one ring");
        let events = &rings[0].1;
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(events.first().unwrap().detail, 10, "oldest surviving op");
        assert_eq!(
            events.last().unwrap().detail,
            (FLIGHT_CAPACITY + 9) as u64,
            "newest op"
        );
    }

    #[test]
    fn render_compresses_runs_and_names_kinds() {
        let fr = FlightRecorder::new();
        for _ in 0..50 {
            fr.push(OpKind::Free, OpOutcome::Ok, 3, 7);
        }
        fr.push(OpKind::Alloc, OpOutcome::Failed, 9, 4);
        let dump = fr.render();
        assert!(dump.contains("free"), "{dump}");
        assert!(dump.contains("\u{d7}50"), "{dump}");
        assert!(dump.contains("FAILED"), "{dump}");
        let empty = FlightRecorder::new().render();
        assert!(empty.contains("no recorded operations"));
    }

    #[test]
    fn latency_bounds_follow_the_bucket() {
        let ev = FlightEvent {
            kind: OpKind::Alloc,
            outcome: OpOutcome::Ok,
            latency_bucket: 6,
            detail: 0,
        };
        assert_eq!(ev.latency_bounds(), (8, 11));
    }
}
