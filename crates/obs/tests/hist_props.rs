//! Correctness suite for the log-bucketed latency histogram.
//!
//! * differential: percentile estimates vs a sorted-`Vec` oracle, with the
//!   error bounded by the width of the bucket the oracle value lands in;
//! * algebra: snapshot `merge` is associative and commutative;
//! * boundaries: 0, 1 and `u64::MAX` cycles record and read back exactly;
//! * concurrency: a recording storm across threads conserves total count.

use proptest::prelude::*;

use nbbs_obs::{
    bucket_high, bucket_index, bucket_low, HistogramSnapshot, LatencyHistogram, BUCKETS,
};

/// The oracle: exact quantile of a sorted sample vector, using the same
/// ceil-rank convention as the histogram.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let total = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

/// A sample distribution with both a dense body and a heavy tail, the shape
/// allocator latencies actually have.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        prop_oneof![
            4 => (50u64..5_000u64).boxed(),
            2 => (5_000u64..1_000_000u64).boxed(),
            1 => (0u64..=u64::MAX).boxed(),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn percentiles_match_sorted_vec_oracle(samples in sample_strategy()) {
        let hist = LatencyHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.total(), samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let est = snap.value_at_quantile(q).unwrap();
            // The estimate is the lower bound of *some* bucket at the same
            // rank; the histogram may place the rank in a lower bucket only
            // when ties straddle a boundary, never in a higher one.
            let exact_bucket = bucket_index(exact);
            prop_assert!(
                bucket_index(est) <= exact_bucket,
                "q={q}: estimate {est} in a later bucket than oracle {exact}"
            );
            // Error bound: within the oracle value's bucket width.
            let width = bucket_high(exact_bucket) - bucket_low(exact_bucket) + 1;
            prop_assert!(
                est <= exact && exact - est <= width.max(1),
                "q={q}: |{est} - {exact}| exceeds bucket width {width}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(parts in (sample_strategy(), sample_strategy(), sample_strategy())) {
        let (xs, ys, zs) = parts;
        let snap_of = |vals: &[u64]| {
            let h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (snap_of(&xs), snap_of(&ys), snap_of(&zs));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Identity: merging the empty snapshot changes nothing.
        let mut ae = a.clone();
        ae.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&ae, &a);

        prop_assert_eq!(
            ab_c.total(),
            (xs.len() + ys.len() + zs.len()) as u64
        );
    }
}

#[test]
fn boundary_values_record_exactly() {
    let hist = LatencyHistogram::new();
    hist.record(0);
    hist.record(1);
    hist.record(u64::MAX);
    let snap = hist.snapshot();
    assert_eq!(snap.total(), 3);
    assert_eq!(snap.counts[0], 1, "0 cycles has its own bucket");
    assert_eq!(snap.counts[1], 1, "1 cycle has its own bucket");
    assert_eq!(
        snap.counts[BUCKETS - 1],
        1,
        "u64::MAX lands in the last bucket"
    );
    assert_eq!(snap.max, u64::MAX);
    // 0 and 1 are exact; the top estimate clamps to the recorded max.
    assert_eq!(snap.value_at_quantile(0.0), Some(0));
    assert_eq!(snap.value_at_quantile(0.5), Some(1));
    assert_eq!(snap.value_at_quantile(1.0), Some(u64::MAX));
}

#[test]
fn concurrent_recording_storm_conserves_total_count() {
    use std::sync::{Arc, Barrier};

    const THREADS: usize = 8;
    const PER_THREAD: usize = 50_000;

    let hist = Arc::new(LatencyHistogram::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // SplitMix-ish per-thread stream over the full bucket range.
                let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1);
                barrier.wait();
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    hist.record(x >> (x % 60));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(
        snap.total(),
        (THREADS * PER_THREAD) as u64,
        "every relaxed increment must land in exactly one bucket"
    );
    assert!(snap.value_at_quantile(0.99).is_some());
}
