//! A [`GlobalAlloc`] adapter: use the non-blocking buddy as the program's
//! memory allocator.
//!
//! **Deprecated.**  This is PR 0's thinnest-possible front end: it talks
//! straight to the raw tree (no magazine cache — `nbbs` cannot depend on
//! `nbbs-cache` without inverting the layering), has no `grow`/`shrink`
//! path, and its `initializing` spin-flag sends concurrent first-touch
//! threads to the system allocator while one thread builds the region.  The
//! `nbbs-alloc` crate supersedes it with a layered, layout-aware facade
//! (`NbbsAllocator` + a lazy `NbbsGlobalAlloc` built on
//! `OnceLock::get_or_init`, magazine-cached, with in-place realloc); this
//! shim remains only so downstream code keeps compiling.
//!
//! # Usage
//!
//! ```no_run
//! # #![allow(deprecated)]
//! use nbbs::NbbsGlobalAlloc;
//!
//! // 64 MiB arena, 32-byte units, 64 KiB largest buddy-served request.
//! #[global_allocator]
//! static ALLOC: NbbsGlobalAlloc = NbbsGlobalAlloc::new(64 << 20, 32, 64 << 10);
//!
//! fn main() {
//!     let v: Vec<u64> = (0..1024).collect();   // served by the buddy
//!     println!("{}", v.len());
//! }
//! ```

// The adapter is deprecated for *downstream* users; its own impls and tests
// legitimately keep referring to it.
#![allow(deprecated)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::config::BuddyConfig;
use crate::fourlvl::NbbsFourLevel;
use crate::region::BuddyRegion;

/// Global-allocator adapter over a non-blocking buddy region.
///
/// Construction is `const` so the adapter can be used in a
/// `#[global_allocator]` static; the backing region is created on first use.
#[deprecated(
    since = "0.1.0",
    note = "use `nbbs_alloc::NbbsGlobalAlloc`: the layered facade routes \
            through the magazine cache, reallocs in place, and replaces the \
            racy `initializing` flag with `OnceLock::get_or_init`"
)]
pub struct NbbsGlobalAlloc {
    total_memory: usize,
    min_size: usize,
    max_size: usize,
    region: OnceLock<BuddyRegion<NbbsFourLevel>>,
    initializing: AtomicBool,
}

impl NbbsGlobalAlloc {
    /// Creates the adapter.  The three sizes follow [`BuddyConfig::new`];
    /// invalid combinations cause every request to fall back to the system
    /// allocator instead of panicking (a global allocator must not panic).
    pub const fn new(total_memory: usize, min_size: usize, max_size: usize) -> Self {
        NbbsGlobalAlloc {
            total_memory,
            min_size,
            max_size,
            region: OnceLock::new(),
            initializing: AtomicBool::new(false),
        }
    }

    /// The buddy region, creating it on first call.
    ///
    /// Returns `None` while the region is being initialized (which includes
    /// re-entrant calls triggered by the metadata allocations of the region
    /// itself) or if the configuration is invalid.
    fn region(&self) -> Option<&BuddyRegion<NbbsFourLevel>> {
        if let Some(r) = self.region.get() {
            return Some(r);
        }
        if self.initializing.swap(true, Ordering::Acquire) {
            // Either another thread is initializing or we recursed into
            // ourselves from the initialization path: serve from the system
            // allocator for now.
            return self.region.get();
        }
        let result = BuddyConfig::new(self.total_memory, self.min_size, self.max_size)
            .map(|cfg| BuddyRegion::new(NbbsFourLevel::new(cfg)));
        if let Ok(region) = result {
            let _ = self.region.set(region);
        }
        self.initializing.store(false, Ordering::Release);
        self.region.get()
    }

    /// Bytes currently served by the buddy region (excludes system fallback).
    pub fn buddy_allocated_bytes(&self) -> usize {
        self.region.get().map_or(0, |r| r.allocated_bytes())
    }

    /// Whether `ptr` was served by the buddy region.
    pub fn owns(&self, ptr: *mut u8) -> bool {
        match (self.region.get(), NonNull::new(ptr)) {
            (Some(region), Some(nn)) => region.contains(nn),
            _ => false,
        }
    }

    /// The buddy request size needed to satisfy `layout` (size and alignment),
    /// if it is servable by the buddy at all.
    fn buddy_request(&self, layout: Layout) -> Option<usize> {
        let want = layout.size().max(layout.align()).max(1);
        if want <= self.max_size {
            Some(want)
        } else {
            None
        }
    }
}

// SAFETY: `alloc`/`dealloc` hand out blocks that are either obtained from the
// system allocator (and released to it) or from the buddy region (released to
// it, matched by address range).  Buddy blocks are at least `layout.size()`
// bytes and aligned to `max(size, align)` rounded to a power of two, which
// satisfies the layout's alignment.
unsafe impl GlobalAlloc for NbbsGlobalAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if let Some(want) = self.buddy_request(layout) {
            if let Some(region) = self.region() {
                if let Some(ptr) = region.alloc_bytes(want) {
                    return ptr.as_ptr();
                }
                // Buddy exhausted: fall through to the system allocator so the
                // program keeps running (the paper's back-end would report
                // OOM to its front end, which is exactly what we do here).
            }
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if let (Some(region), Some(nn)) = (self.region.get(), NonNull::new(ptr)) {
            if region.contains(nn) {
                region.dealloc_bytes(nn);
                return;
            }
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.alloc(layout);
        if !ptr.is_null() && self.owns(ptr) {
            // Buddy memory is recycled without scrubbing; zero it here.
            std::ptr::write_bytes(ptr, 0, layout.size());
        } else if !ptr.is_null() {
            // System alloc path: `System.alloc` does not zero either, but we
            // reached it through `alloc`, so zero explicitly as well.
            std::ptr::write_bytes(ptr, 0, layout.size());
        }
        ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_small_requests_from_the_buddy() {
        let a = NbbsGlobalAlloc::new(1 << 20, 64, 1 << 16);
        let layout = Layout::from_size_align(512, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(a.owns(p));
            assert_eq!(a.buddy_allocated_bytes(), 512);
            p.write_bytes(0xCD, 512);
            a.dealloc(p, layout);
        }
        assert_eq!(a.buddy_allocated_bytes(), 0);
    }

    #[test]
    fn oversized_requests_fall_back_to_system() {
        let a = NbbsGlobalAlloc::new(1 << 20, 64, 1 << 12);
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(!a.owns(p));
            a.dealloc(p, layout);
        }
        assert_eq!(a.buddy_allocated_bytes(), 0);
    }

    #[test]
    fn over_aligned_requests_are_handled() {
        let a = NbbsGlobalAlloc::new(1 << 20, 64, 1 << 16);
        // 64-byte payload with 4096-byte alignment: the buddy serves it by
        // rounding the request up to the alignment.
        let layout = Layout::from_size_align(64, 4096).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(p as usize % 4096, 0);
            a.dealloc(p, layout);
        }
        assert_eq!(a.buddy_allocated_bytes(), 0);
    }

    #[test]
    fn alloc_zeroed_scrubs_recycled_memory() {
        let a = NbbsGlobalAlloc::new(1 << 16, 64, 1 << 12);
        let layout = Layout::from_size_align(256, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            p.write_bytes(0xFF, 256);
            a.dealloc(p, layout);
            let q = a.alloc_zeroed(layout);
            for i in 0..256 {
                assert_eq!(*q.add(i), 0, "byte {i} not zeroed");
            }
            a.dealloc(q, layout);
        }
    }

    #[test]
    fn exhaustion_falls_back_to_system_instead_of_failing() {
        let a = NbbsGlobalAlloc::new(1024, 64, 1024);
        let layout = Layout::from_size_align(1024, 8).unwrap();
        unsafe {
            let p1 = a.alloc(layout);
            let p2 = a.alloc(layout);
            assert!(!p1.is_null() && !p2.is_null());
            assert!(a.owns(p1));
            assert!(!a.owns(p2), "second request must come from the system");
            a.dealloc(p1, layout);
            a.dealloc(p2, layout);
        }
    }

    #[test]
    fn invalid_configuration_degrades_to_system_allocator() {
        // 1000 is not a power of two: the region can never be built, but the
        // adapter must keep serving requests.
        let a = NbbsGlobalAlloc::new(1000, 64, 512);
        let layout = Layout::from_size_align(128, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(!a.owns(p));
            a.dealloc(p, layout);
        }
    }

    #[test]
    fn concurrent_usage_through_the_adapter() {
        use std::sync::Arc;
        let a = Arc::new(NbbsGlobalAlloc::new(1 << 20, 64, 1 << 14));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let layout = Layout::from_size_align(128, 16).unwrap();
                    for _ in 0..1_000 {
                        unsafe {
                            let p = a.alloc(layout);
                            assert!(!p.is_null());
                            p.write_bytes(0xAB, 128);
                            a.dealloc(p, layout);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.buddy_allocated_bytes(), 0);
    }
}
