//! # nbbs — a Non-Blocking Buddy System
//!
//! Rust reproduction of *“A Non-blocking Buddy System for Scalable Memory
//! Allocation on Multi-core Machines”* (R. Marotta, M. Ianni, A. Scarselli,
//! A. Pellegrini, F. Quaglia — IEEE CLUSTER 2018, arXiv:1804.03436).
//!
//! A buddy system manages a contiguous memory region by recursively halving
//! it; every chunk has a power-of-two size and merging two *buddies* (the two
//! halves of the same parent) reconstitutes the parent chunk.  The paper's
//! contribution is a buddy system whose allocation, release **and coalescing**
//! paths are all *lock-free*: concurrent threads never take a lock, they only
//! race on single-word Compare-And-Swap (CAS) operations over the allocator's
//! metadata and retry (or move to another chunk) when a conflict materializes.
//!
//! ## What is in this crate
//!
//! * [`NbbsOneLevel`] — the baseline non-blocking buddy (`1lvl-nb` in the
//!   paper): one status byte per tree node, Algorithms 1–4 of the paper.
//! * [`NbbsFourLevel`] — the 4-level optimized variant (`4lvl-nb`, §III-D):
//!   four tree levels packed per 64-bit word so that one CAS updates four
//!   levels at a time.
//! * [`LockedBuddy`] — the same data structures behind a single global spin
//!   lock (`1lvl-sl` / `4lvl-sl`), used by the paper as blocking yardsticks.
//! * [`BuddyBackend`] — the common back-end allocator interface implemented by
//!   every variant (and by the baselines in `nbbs-baselines`), expressed in
//!   terms of byte *offsets* into the managed region so the core state machine
//!   contains no `unsafe`.
//! * [`BuddyRegion`] — wrapper that attaches real backing memory (a
//!   demand-zero [`Mapping`]) and exposes a pointer-returning API, plus the
//!   decommit scrubber that makes the region *elastic*: committed memory
//!   follows the live set instead of staying pinned at the configured peak.
//! * [`ElasticSet`] — a chain of buddy instances behind one widened
//!   [`BuddyBackend`] that grows under sustained OOM pressure and retires
//!   drained regions at trough.
//! * [`MultiInstance`] — a NUMA-style multi-instance router, mirroring how the
//!   Linux kernel deploys one buddy instance per NUMA node.  (Deprecated: the
//!   `nbbs-numa` crate's `NodeSet` carries the same routing but implements
//!   [`BuddyBackend`] over a widened geometry — [`Geometry::widened`] — so the
//!   cache and facade layers stack on top of it unchanged.)
//! * [`verify`] — runtime checkers for the paper's safety properties (no two
//!   live allocations overlap; a free releases exactly what was allocated).
//!
//! The paper positions the non-blocking buddy as a *backend*: real
//! deployments interpose a per-CPU/per-thread front-end cache so the hot path
//! rarely touches the shared tree.  That layer lives in the companion
//! `nbbs-cache` crate (`MagazineCache<A: BuddyBackend>`, a Bonwick-style
//! magazine/depot cache), and the `nbbs-alloc` crate stacks a layout-aware
//! allocator facade on top (tree → cache → facade).  This crate only
//! provides the hooks they build on — [`BuddyBackend::granted_size_of_live`]
//! and [`BuddyBackend::granted_size_for`] (size-class and in-place-realloc
//! lookups), [`BuddyBackend::cache_stats`] / [`CacheStatsSnapshot`] and
//! [`BuddyBackend::cache_class_capacities`] (cache telemetry through `dyn
//! BuddyBackend`).  Because the cache implements [`BuddyBackend`] itself, it
//! nests unchanged inside [`BuddyRegion`] and [`MultiInstance`].
//!
//! ## Quick start
//!
//! ```
//! use nbbs::{BuddyBackend, BuddyConfig, NbbsOneLevel};
//!
//! // 1 MiB arena, 64-byte allocation units, largest single request 64 KiB.
//! let config = BuddyConfig::new(1 << 20, 64, 1 << 16).unwrap();
//! let buddy = NbbsOneLevel::new(config);
//!
//! let a = buddy.alloc(100).expect("plenty of room");   // rounded up to 128
//! let b = buddy.alloc(4096).expect("plenty of room");
//! assert_ne!(a, b);
//! buddy.dealloc(a);
//! buddy.dealloc(b);
//! assert_eq!(buddy.allocated_bytes(), 0);
//! ```
//!
//! To hand out real pointers instead of offsets, wrap any backend in a
//! [`BuddyRegion`]:
//!
//! ```
//! use nbbs::{BuddyConfig, BuddyRegion, NbbsFourLevel};
//!
//! let config = BuddyConfig::new(1 << 20, 64, 1 << 16).unwrap();
//! let region = BuddyRegion::new(NbbsFourLevel::new(config));
//! let ptr = region.alloc_bytes(256).unwrap();
//! unsafe { ptr.as_ptr().write_bytes(0xAB, 256) };
//! region.dealloc_bytes(ptr);
//! ```
//!
//! ## Relationship to the paper's terminology
//!
//! | Paper | This crate |
//! |---|---|
//! | `NBALLOC` | [`BuddyBackend::alloc`] / [`NbbsOneLevel::try_alloc_size`] |
//! | `TRYALLOC` | `onelvl::NbbsOneLevel::try_alloc_node` (private) |
//! | `NBFREE` | [`BuddyBackend::dealloc`] |
//! | `FREENODE` / `UNMARK` | private helpers of each variant |
//! | `tree[]`, `index[]` | `tree`/`index` fields (one `AtomicU8`/`AtomicU32` per entry) |
//! | status bits (Fig. 1) | [`status`] module |
//! | bunch (§III-D) | [`fourlvl::BunchGeometry`] |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod elastic;
pub mod error;
pub mod fourlvl;
pub mod geometry;
pub mod locked;
pub mod mapping;
pub mod multi;
pub mod occupancy;
pub mod onelvl;
pub mod region;
pub mod stats;
pub mod status;
pub mod traits;
pub mod verify;

pub use config::{BuddyConfig, ScanPolicy};
pub use elastic::{ElasticSet, ElasticStatsSnapshot};
pub use error::{AllocError, ConfigError, FreeError};
pub use fourlvl::NbbsFourLevel;
pub use geometry::Geometry;
pub use locked::{LockedBuddy, LockedFourLevel, LockedOneLevel};
pub use mapping::Mapping;
pub use multi::nearest_first_order;
#[allow(deprecated)]
pub use multi::MultiInstance;
pub use occupancy::{occupancy_of, LevelOccupancy, OccupancySnapshot};
pub use onelvl::NbbsOneLevel;
pub use region::BuddyRegion;
pub use stats::{
    CacheStatsSnapshot, FragClassSnapshot, FragStatsSnapshot, MemoryStatsSnapshot, OpStats,
    OpStatsSnapshot, CAS_LEVELS,
};
pub use traits::{BuddyBackend, TreeInspect};
