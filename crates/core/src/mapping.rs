//! Demand-zero backing memory with page-granular decommit accounting.
//!
//! [`Mapping`] is the raw-memory half of [`crate::BuddyRegion`]: a span of
//! `len` bytes aligned to `align`, obtained from an anonymous private
//! `mmap` on Linux (so untouched pages cost no physical memory) and from
//! `alloc_zeroed` elsewhere.  On top of the span it keeps a page-granular
//! *decommit bitmap*: the scrub path marks quiescent free ranges as
//! decommitted (releasing their frames with `madvise(MADV_DONTNEED)` on
//! Linux, rewriting them to zero elsewhere so the "decommitted memory reads
//! zero" contract holds on every platform), and the grant path clears the
//! marks again — the kernel recommits lazily on first touch, the bitmap
//! only tracks the accounting.
//!
//! `committed_bytes` derived from the bitmap is an **upper bound** on
//! resident memory: a page that was never touched *and* never scrubbed
//! counts as committed even though the kernel has not backed it yet.  The
//! bound is what the elastic-region telemetry needs — it converges on the
//! truth as soon as the scrubber has made one pass over the idle span.
//!
//! All bitmap operations are lock-free (`fetch_or` / `fetch_and` over
//! `AtomicU64` words).  Callers must guarantee that a range passed to
//! [`Mapping::decommit`] holds no live data (the buddy scrubber claims the
//! block through the allocation path first); ranges passed to
//! [`Mapping::commit_range`] and [`Mapping::pin_range`] only ever touch
//! pages of blocks the caller owns, so the two directions never race on the
//! same page.

#[cfg(not(target_os = "linux"))]
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Fallback page granule when the platform page size cannot be queried.
const FALLBACK_PAGE_SIZE: usize = 4096;

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MADV_DONTNEED: c_int = 4;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // std already links libc; declaring the handful of calls we need keeps
    // the crate dependency-free.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        pub fn getpagesize() -> c_int;
    }
}

/// The platform page size (the decommit granule), falling back to 4 KiB.
pub fn page_size() -> usize {
    #[cfg(target_os = "linux")]
    {
        // SAFETY: getpagesize has no preconditions.
        let p = unsafe { sys::getpagesize() };
        if p > 0 {
            return p as usize;
        }
    }
    FALLBACK_PAGE_SIZE
}

/// How the span is backed (and must be released).
enum Backing {
    /// Anonymous private mapping; the whole reservation (which may be larger
    /// than the usable span, to satisfy over-page alignment) is unmapped on
    /// drop.
    #[cfg(target_os = "linux")]
    Mapped { map_base: *mut u8, map_len: usize },
    /// Heap allocation from the global allocator (non-Linux fallback).
    #[cfg(not(target_os = "linux"))]
    Heap { raw: *mut u8, layout: Layout },
}

/// A demand-zero span of memory with page-granular decommit accounting.
pub struct Mapping {
    base: NonNull<u8>,
    len: usize,
    page_size: usize,
    backing: Backing,
    /// One bit per page of the span: set = decommitted (reads zero, costs
    /// no physical frame on Linux).
    decommitted: Box<[AtomicU64]>,
    /// Gauge: pages currently marked decommitted.
    decommitted_pages: AtomicUsize,
    /// Cumulative bytes ever decommitted.
    decommit_bytes_total: AtomicU64,
    /// Cumulative bytes whose decommit mark was cleared by a grant (an
    /// upper bound on lazily recommitted memory).
    recommit_bytes_total: AtomicU64,
}

// SAFETY: the span is only dereferenced through disjoint ranges handed out
// by a thread-safe buddy backend; the bitmap is atomic.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Reserves a demand-zero span of `len` bytes aligned to `align`
    /// (`align` must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if the reservation fails (mirroring `handle_alloc_error` for
    /// the heap path: a region that cannot be backed is unrecoverable).
    pub fn new(len: usize, align: usize) -> Self {
        assert!(len > 0, "empty mapping");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let page = page_size();
        let (base, backing) = Self::reserve(len, align, page);
        let pages = len.div_ceil(page);
        let words = pages.div_ceil(64);
        Mapping {
            base,
            len,
            page_size: page,
            backing,
            decommitted: (0..words).map(|_| AtomicU64::new(0)).collect(),
            decommitted_pages: AtomicUsize::new(0),
            decommit_bytes_total: AtomicU64::new(0),
            recommit_bytes_total: AtomicU64::new(0),
        }
    }

    #[cfg(target_os = "linux")]
    fn reserve(len: usize, align: usize, page: usize) -> (NonNull<u8>, Backing) {
        // Over-reserve when the requested alignment exceeds what mmap
        // guarantees; the slack pages are never touched, so demand paging
        // makes them free.
        let map_len = len
            .div_ceil(page)
            .checked_mul(page)
            .and_then(|l| l.checked_add(if align > page { align } else { 0 }))
            .expect("mapping length overflow");
        // SAFETY: anonymous private mapping, no fd, no fixed address.
        let raw = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(
            raw != sys::MAP_FAILED && !raw.is_null(),
            "mmap of {map_len} bytes failed"
        );
        let map_base = raw as *mut u8;
        let aligned = (map_base as usize).next_multiple_of(align);
        // mmap returns page-aligned memory, and any align > page is a
        // multiple of page, so `aligned` stays page-aligned: offset-space
        // page boundaries coincide with address-space page boundaries,
        // which `decommit` relies on for madvise.
        let base = NonNull::new(aligned as *mut u8).expect("aligned base is non-null");
        (base, Backing::Mapped { map_base, map_len })
    }

    #[cfg(not(target_os = "linux"))]
    fn reserve(len: usize, align: usize, _page: usize) -> (NonNull<u8>, Backing) {
        let layout = Layout::from_size_align(len, align.max(std::mem::align_of::<usize>()))
            .expect("invalid mapping layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let base = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        (base, Backing::Heap { raw, layout })
    }

    /// Base address of the usable span.
    pub fn base(&self) -> NonNull<u8> {
        self.base
    }

    /// Usable span length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the span is empty (never true: construction requires
    /// `len > 0`; provided for `len`/`is_empty` lint symmetry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The page size the decommit bitmap is expressed in.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages currently marked decommitted.
    pub fn decommitted_pages(&self) -> usize {
        self.decommitted_pages.load(Ordering::Relaxed)
    }

    /// Bytes currently marked decommitted.
    pub fn decommitted_bytes(&self) -> usize {
        self.decommitted_pages() * self.page_size
    }

    /// Committed bytes: span length minus decommitted bytes.  An upper
    /// bound on resident memory (see the module docs).
    pub fn committed_bytes(&self) -> usize {
        self.len.saturating_sub(self.decommitted_bytes())
    }

    /// Cumulative bytes ever decommitted.
    pub fn decommit_bytes_total(&self) -> u64 {
        self.decommit_bytes_total.load(Ordering::Relaxed)
    }

    /// Cumulative bytes whose decommit mark was cleared by a grant.
    pub fn recommit_bytes_total(&self) -> u64 {
        self.recommit_bytes_total.load(Ordering::Relaxed)
    }

    /// Releases the physical frames of `[offset, offset + len)`, shrunk
    /// inward to whole pages, and marks them decommitted.  Returns the
    /// number of bytes *newly* decommitted (0 when the range was already
    /// fully decommitted — the madvise is skipped in that case).
    ///
    /// The caller must guarantee the range holds no live data: afterwards
    /// it reads as zero.
    pub fn decommit(&self, offset: usize, len: usize) -> usize {
        let Some((first, end)) = self.page_span_inward(offset, len) else {
            return 0;
        };
        let newly = self.mark_range(first, end, true);
        if newly == 0 {
            return 0; // already decommitted end to end: nothing to release
        }
        let start_byte = first * self.page_size;
        let span = (end - first) * self.page_size;
        #[cfg(target_os = "linux")]
        {
            // SAFETY: the range lies inside the mapping, is page-aligned
            // (base is page-aligned), and the caller owns it exclusively.
            let rc = unsafe {
                sys::madvise(
                    self.base.as_ptr().add(start_byte) as *mut std::os::raw::c_void,
                    span,
                    sys::MADV_DONTNEED,
                )
            };
            debug_assert_eq!(rc, 0, "madvise(MADV_DONTNEED) failed");
        }
        #[cfg(not(target_os = "linux"))]
        {
            // No kernel decommit available: emulate the observable contract
            // (decommitted memory reads zero) so behaviour and tests match
            // across platforms.
            // SAFETY: as above — the caller owns the range exclusively.
            unsafe { self.base.as_ptr().add(start_byte).write_bytes(0, span) };
        }
        let bytes = newly * self.page_size;
        self.decommitted_pages.fetch_add(newly, Ordering::Relaxed);
        self.decommit_bytes_total
            .fetch_add(bytes as u64, Ordering::Relaxed);
        bytes
    }

    /// Whether every page of `[offset, offset + len)` (shrunk inward to
    /// whole pages) is already marked decommitted.
    pub fn is_fully_decommitted(&self, offset: usize, len: usize) -> bool {
        let Some((first, end)) = self.page_span_inward(offset, len) else {
            return false;
        };
        for page in first..end {
            let bit = 1u64 << (page % 64);
            if self.decommitted[page / 64].load(Ordering::Relaxed) & bit == 0 {
                return false;
            }
        }
        true
    }

    /// Clears the decommit marks of every page overlapping
    /// `[offset, offset + len)` — called on the grant path so the
    /// committed-bytes gauge follows memory back into service.  The kernel
    /// recommits lazily on first touch; this only maintains the accounting.
    pub fn commit_range(&self, offset: usize, len: usize) {
        if self.decommitted_pages.load(Ordering::Relaxed) == 0 {
            return; // fast path: nothing is decommitted
        }
        let (first, end) = self.page_span_outward(offset, len);
        let cleared = self.mark_range(first, end, false);
        if cleared > 0 {
            self.decommitted_pages.fetch_sub(cleared, Ordering::Relaxed);
            self.recommit_bytes_total
                .fetch_add((cleared * self.page_size) as u64, Ordering::Relaxed);
        }
    }

    /// Commits *and write-touches* every page overlapping
    /// `[offset, offset + len)`, faulting the frames in right now.  Used to
    /// pin latency-critical ranges (the OOM emergency reserve) so they
    /// never take a page fault on the path that needs them.
    ///
    /// The caller must own the range (the touch is a volatile read/write
    /// round-trip, so the data is preserved).
    pub fn pin_range(&self, offset: usize, len: usize) {
        self.commit_range(offset, len);
        let end = (offset + len).min(self.len);
        let mut at = offset;
        while at < end {
            // SAFETY: `at < len`; the caller owns the range, and rewriting
            // the byte just read leaves the contents intact.
            unsafe {
                let p = self.base.as_ptr().add(at);
                let v = p.read_volatile();
                p.write_volatile(v);
            }
            at = match at.checked_add(self.page_size) {
                Some(next) => next,
                None => break,
            };
        }
        // Touch the final page when len is not page-multiple.
        if end > offset {
            // SAFETY: end - 1 < len and the caller owns the range.
            unsafe {
                let p = self.base.as_ptr().add(end - 1);
                let v = p.read_volatile();
                p.write_volatile(v);
            }
        }
    }

    /// Whole pages strictly inside `[offset, offset + len)`, as a
    /// `[first, end)` page-index range.
    fn page_span_inward(&self, offset: usize, len: usize) -> Option<(usize, usize)> {
        let lo = offset.min(self.len);
        let hi = offset.checked_add(len)?.min(self.len);
        let first = lo.div_ceil(self.page_size);
        let end = hi / self.page_size;
        (first < end).then_some((first, end))
    }

    /// Every page overlapping `[offset, offset + len)`, as a `[first, end)`
    /// page-index range (clamped to the span).
    fn page_span_outward(&self, offset: usize, len: usize) -> (usize, usize) {
        let lo = offset.min(self.len);
        let hi = offset.saturating_add(len).min(self.len);
        let first = lo / self.page_size;
        let end = hi.div_ceil(self.page_size);
        (first, end)
    }

    /// Sets (`true`) or clears (`false`) the bitmap over `[first, end)`
    /// pages, word at a time; returns how many bits actually changed.
    fn mark_range(&self, first: usize, end: usize, set: bool) -> usize {
        let mut changed = 0usize;
        let mut page = first;
        while page < end {
            let word = page / 64;
            let lo_bit = page % 64;
            let hi_bit = (end - word * 64).min(64);
            let mask = if hi_bit - lo_bit == 64 {
                u64::MAX
            } else {
                ((1u64 << (hi_bit - lo_bit)) - 1) << lo_bit
            };
            let prev = if set {
                self.decommitted[word].fetch_or(mask, Ordering::AcqRel)
            } else {
                self.decommitted[word].fetch_and(!mask, Ordering::AcqRel)
            };
            changed += if set {
                (mask & !prev).count_ones() as usize
            } else {
                (mask & prev).count_ones() as usize
            };
            page = (word + 1) * 64;
        }
        changed
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match self.backing {
            #[cfg(target_os = "linux")]
            Backing::Mapped { map_base, map_len } => {
                // SAFETY: exactly the reservation made in `reserve`.
                unsafe { sys::munmap(map_base as *mut std::os::raw::c_void, map_len) };
            }
            #[cfg(not(target_os = "linux"))]
            Backing::Heap { raw, layout } => {
                // SAFETY: allocated with exactly this layout in `reserve`.
                unsafe { std::alloc::dealloc(raw, layout) };
            }
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("page_size", &self.page_size)
            .field("decommitted_pages", &self.decommitted_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_aligned_zeroed_and_writable() {
        let m = Mapping::new(1 << 16, 1 << 12);
        assert_eq!(m.base().as_ptr() as usize % (1 << 12), 0);
        assert_eq!(m.len(), 1 << 16);
        assert!(!m.is_empty());
        unsafe {
            for i in [0usize, 1 << 12, (1 << 16) - 1] {
                assert_eq!(*m.base().as_ptr().add(i), 0, "byte {i} not zero");
            }
            m.base().as_ptr().write_bytes(0xAB, 1 << 16);
            assert_eq!(*m.base().as_ptr().add((1 << 16) - 1), 0xAB);
        }
    }

    #[test]
    fn over_page_alignment_is_honoured() {
        let align = page_size() * 4;
        let m = Mapping::new(align * 2, align);
        assert_eq!(m.base().as_ptr() as usize % align, 0);
    }

    #[test]
    fn decommit_zeroes_and_accounts() {
        let page = page_size();
        let m = Mapping::new(page * 8, page);
        unsafe { m.base().as_ptr().write_bytes(0xFF, page * 8) };
        assert_eq!(m.committed_bytes(), page * 8);

        let freed = m.decommit(page * 2, page * 3);
        assert_eq!(freed, page * 3);
        assert_eq!(m.decommitted_pages(), 3);
        assert_eq!(m.decommitted_bytes(), page * 3);
        assert_eq!(m.committed_bytes(), page * 5);
        assert!(m.is_fully_decommitted(page * 2, page * 3));
        assert!(!m.is_fully_decommitted(page, page * 2));
        unsafe {
            assert_eq!(
                *m.base().as_ptr().add(page * 2),
                0,
                "decommitted reads zero"
            );
            assert_eq!(*m.base().as_ptr().add(page * 5 - 1), 0);
            assert_eq!(*m.base().as_ptr().add(page), 0xFF, "neighbour untouched");
            assert_eq!(*m.base().as_ptr().add(page * 5), 0xFF);
        }

        // Second decommit of the same range is a no-op.
        assert_eq!(m.decommit(page * 2, page * 3), 0);
        assert_eq!(m.decommit_bytes_total(), (page * 3) as u64);
    }

    #[test]
    fn sub_page_ranges_round_inward_to_nothing() {
        let page = page_size();
        let m = Mapping::new(page * 4, page);
        assert_eq!(m.decommit(10, page - 20), 0, "no whole page inside");
        assert_eq!(m.decommitted_pages(), 0);
        assert!(!m.is_fully_decommitted(10, page - 20));
    }

    #[test]
    fn commit_clears_marks_and_counts_recommits() {
        let page = page_size();
        let m = Mapping::new(page * 8, page);
        m.decommit(0, page * 8);
        assert_eq!(m.decommitted_pages(), 8);

        // A grant overlapping pages 1..3 (partially) recommits pages 1..=3.
        m.commit_range(page + 7, page * 2);
        assert_eq!(m.decommitted_pages(), 5);
        assert_eq!(m.recommit_bytes_total(), (page * 3) as u64);
        assert_eq!(m.committed_bytes(), page * 3);

        // Fast path: committing an already-committed range changes nothing.
        m.commit_range(page, page * 2);
        assert_eq!(m.decommitted_pages(), 5);
        m.commit_range(0, page * 8);
        assert_eq!(m.decommitted_pages(), 0);
        m.commit_range(0, page * 8); // decommitted_pages == 0 fast path
        assert_eq!(m.recommit_bytes_total(), (page * 8) as u64);
    }

    #[test]
    fn pin_touches_without_clobbering() {
        let page = page_size();
        let m = Mapping::new(page * 4, page);
        unsafe { m.base().as_ptr().add(page).write_bytes(0x5C, page) };
        m.pin_range(page, page * 2);
        unsafe {
            assert_eq!(*m.base().as_ptr().add(page), 0x5C);
            assert_eq!(*m.base().as_ptr().add(page * 2 - 1), 0x5C);
        }
        // Pinning a decommitted range recommits it (reads zero afterwards).
        m.decommit(0, page);
        m.pin_range(0, page);
        assert_eq!(m.decommitted_pages(), 0);
        unsafe { assert_eq!(*m.base().as_ptr(), 0) };
    }

    #[test]
    fn spans_smaller_than_a_page_work() {
        let m = Mapping::new(1024, 1024);
        unsafe {
            m.base().as_ptr().write_bytes(0x11, 1024);
            assert_eq!(*m.base().as_ptr().add(1023), 0x11);
        }
        assert_eq!(m.decommit(0, 1024), 0, "smaller than one page");
        assert_eq!(m.committed_bytes(), 1024);
    }

    #[test]
    fn bitmap_word_boundaries_are_exact() {
        let page = page_size();
        // 130 pages spans three bitmap words.
        let m = Mapping::new(page * 130, page);
        assert_eq!(m.decommit(0, page * 130), page * 130);
        assert_eq!(m.decommitted_pages(), 130);
        m.commit_range(page * 63, page * 2); // straddles the word boundary
        assert_eq!(m.decommitted_pages(), 128);
        assert!(m.is_fully_decommitted(page * 65, page * 65));
        assert!(!m.is_fully_decommitted(page * 63, page * 2));
    }
}
