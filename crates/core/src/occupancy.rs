//! Tree occupancy inspection: per-level fill and external fragmentation.
//!
//! The status tree already encodes, node by node, everything needed to
//! answer "how full is each level and how shattered is the free space" —
//! the questions a soak or a capacity planner asks between the aggregate
//! counters (`allocated_bytes`) and a full [`crate::verify`] audit.  This
//! module walks a [`TreeInspect`] view once and folds it into an
//! [`OccupancySnapshot`]:
//!
//! * per-level node classification (free / occupied-here / branch-busy),
//!   which renders as the occupancy heatmap in the metrics registry.  Only
//!   the *allocatable* levels (`max_level..=depth`) are walked: the climb
//!   of both release and allocation stops at `max_level`, so status bytes
//!   above it are never written and carry no information;
//! * the maximal free blocks (a free node whose ancestors up to
//!   `max_level` are not free is the root of one), coalesced into
//!   contiguous *runs* by offset — adjacent free subtrees are one run even
//!   though the tree never merges them above `max_level` — giving *total
//!   free bytes* and the *largest free block*;
//! * the external-fragmentation metric the ISSUE tracks:
//!   `largest-free-block / total-free` — `1.0` means the free space is one
//!   contiguous chunk, values near `0` mean it is shattered into slivers
//!   no large request can use.
//!
//! The walk is read-only and runs over live atomics, so concurrent
//! operations can tear the answer; like every other snapshot in the stack
//! it is exact at quiescence and best-effort in flight.

use crate::geometry::Geometry;
use crate::status::{is_free, is_occupied};
use crate::traits::TreeInspect;

/// Node classification counts for one tree level.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelOccupancy {
    /// Level index in the tree (0 = root; the first reported level is the
    /// geometry's `max_level`).
    pub level: u32,
    /// Chunk size one node of this level manages, in bytes.
    pub chunk_size: usize,
    /// Nodes at this level.
    pub nodes: usize,
    /// Nodes whose whole subtree is free.
    pub free: usize,
    /// Nodes serving an allocation targeted exactly at them (or covered by
    /// an occupied ancestor — their bytes are just as taken).
    pub occupied: usize,
    /// Nodes neither free nor occupied: branch bits say allocations live
    /// somewhere below.
    pub busy: usize,
}

impl LevelOccupancy {
    /// Fraction of this level's nodes that are not entirely free,
    /// in `0.0..=1.0` (`0.0` for a level with no nodes).
    pub fn fill(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            (self.occupied + self.busy) as f64 / self.nodes as f64
        }
    }
}

/// Point-in-time occupancy of one tree (or several merged trees).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Per-level classification over the allocatable levels, largest
    /// chunks first.
    pub levels: Vec<LevelOccupancy>,
    /// Bytes under maximal free subtrees.
    pub total_free_bytes: usize,
    /// Largest contiguous run of free bytes (adjacent free subtrees
    /// coalesced by offset), in bytes.
    pub largest_free_block: usize,
    /// Number of contiguous free runs the free bytes are split into.
    pub free_blocks: usize,
    /// Trees folded into this snapshot (NUMA node sets merge one per node).
    pub merged_trees: usize,
    /// The maximal free subtrees as `(offset, size)` pairs in ascending
    /// offset order (within each merged tree).  Each entry is a whole,
    /// naturally aligned buddy block that was entirely free at walk time —
    /// exactly the claim targets the decommit scrubber needs
    /// ([`crate::BuddyBackend::scrub_claim`]).  Wrappers that pack several
    /// trees into one offset space remap these with
    /// [`OccupancySnapshot::shift_free_chunks`] before merging.
    pub free_chunks: Vec<(usize, usize)>,
}

impl OccupancySnapshot {
    /// The external-fragmentation metric: `largest_free_block /
    /// total_free_bytes`.  `1.0` when the free space is a single contiguous
    /// block (no external fragmentation), approaching `0.0` as it shatters;
    /// reported as `1.0` for a tree with no free space at all (nothing is
    /// fragmented when nothing is free).
    pub fn external_frag(&self) -> f64 {
        if self.total_free_bytes == 0 {
            1.0
        } else {
            self.largest_free_block as f64 / self.total_free_bytes as f64
        }
    }

    /// Folds another tree's snapshot into this one: levels are matched by
    /// chunk size, free bytes add up, and the largest block is the maximum
    /// across trees (free space on different nodes is never contiguous).
    pub fn merge(&mut self, other: &OccupancySnapshot) {
        for lvl in &other.levels {
            match self
                .levels
                .iter_mut()
                .find(|l| l.chunk_size == lvl.chunk_size)
            {
                Some(mine) => {
                    mine.nodes += lvl.nodes;
                    mine.free += lvl.free;
                    mine.occupied += lvl.occupied;
                    mine.busy += lvl.busy;
                }
                None => self.levels.push(lvl.clone()),
            }
        }
        self.levels
            .sort_by_key(|l| core::cmp::Reverse(l.chunk_size));
        self.total_free_bytes += other.total_free_bytes;
        self.largest_free_block = self.largest_free_block.max(other.largest_free_block);
        self.free_blocks += other.free_blocks;
        self.merged_trees += other.merged_trees;
        self.free_chunks.extend_from_slice(&other.free_chunks);
    }

    /// Rebases every free chunk by `delta` bytes — used by wrappers (NUMA
    /// node sets, elastic region sets) whose global offset space places
    /// tree `i` at `i << shift`, so a tree-local chunk offset becomes a
    /// global one before snapshots are merged.
    pub fn shift_free_chunks(&mut self, delta: usize) {
        for (off, _) in &mut self.free_chunks {
            *off += delta;
        }
    }
}

/// Walks the status tree of `tree` into an [`OccupancySnapshot`].
///
/// A free node under an occupied ancestor is counted as occupied (its bytes
/// are granted even though its own status byte is untouched), so the
/// per-level counts reflect the *derived* occupancy rather than the raw
/// bits.  Coalescing bits do not make a node busy, mirroring
/// [`is_free`].
pub fn occupancy_of<T: TreeInspect + ?Sized>(tree: &T) -> OccupancySnapshot {
    let g = tree.inspect_geometry();
    let top = g.max_level();
    let mut snap = OccupancySnapshot {
        levels: (top..=g.depth())
            .map(|level| LevelOccupancy {
                level,
                chunk_size: g.size_of_level(level),
                nodes: g.nodes_at_level(level),
                ..LevelOccupancy::default()
            })
            .collect(),
        merged_trees: 1,
        ..OccupancySnapshot::default()
    };
    // DFS left-to-right over each max_level subtree yields the maximal free
    // subtrees in ascending offset order, ready for run coalescing.
    let mut free_subtrees: Vec<(usize, usize)> = Vec::new();
    for pos in 0..g.nodes_at_level(top) {
        walk(
            tree,
            g,
            g.node_at(top, pos),
            Cover::None,
            &mut snap,
            &mut free_subtrees,
        );
    }
    let mut run_len = 0usize;
    let mut run_end = usize::MAX;
    for &(off, size) in &free_subtrees {
        if off == run_end {
            run_len += size;
        } else {
            if run_len > 0 {
                snap.free_blocks += 1;
            }
            run_len = size;
        }
        run_end = off + size;
        snap.total_free_bytes += size;
        snap.largest_free_block = snap.largest_free_block.max(run_len);
    }
    if run_len > 0 {
        snap.free_blocks += 1;
    }
    snap.free_chunks = free_subtrees;
    snap
}

/// Collects the maximal free subtrees of `tree` that are at least
/// `min_size` bytes, ascending by offset, without the unit-granular
/// descent [`occupancy_of`] performs: a free or occupied node settles its
/// whole subtree, and busy subtrees too small to hold a `min_size` chunk
/// are pruned.  The walk therefore touches `O(total / min_size)` nodes —
/// at page granularity that is thousands of times cheaper than a full
/// occupancy snapshot, which is what lets the decommit scrubber poll it
/// every pass without shadowing the allocation path.
pub fn free_chunks_of<T: TreeInspect + ?Sized>(tree: &T, min_size: usize) -> Vec<(usize, usize)> {
    let g = tree.inspect_geometry();
    let mut chunks = Vec::new();
    if min_size > g.max_size() {
        return chunks;
    }
    let top = g.max_level();
    for pos in 0..g.nodes_at_level(top) {
        pruned_walk(tree, g, g.node_at(top, pos), min_size, &mut chunks);
    }
    chunks
}

fn pruned_walk<T: TreeInspect + ?Sized>(
    tree: &T,
    g: &Geometry,
    n: usize,
    min_size: usize,
    chunks: &mut Vec<(usize, usize)>,
) {
    let status = tree.node_status(n);
    if is_occupied(status) {
        return;
    }
    if is_free(status) {
        chunks.push((g.offset_of(n), g.size_of(n)));
        return;
    }
    // Busy: free descendants are strictly smaller than this node, so stop
    // once the children could no longer hold a min_size chunk.
    if g.size_of(n) / 2 < min_size {
        return;
    }
    let left = g.left_child(n);
    if left <= g.node_count() {
        pruned_walk(tree, g, left, min_size, chunks);
        pruned_walk(tree, g, g.right_child(n), min_size, chunks);
    }
}

/// How an ancestor constrains the node being visited.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Cover {
    /// No ancestor decided this subtree's fate.
    None,
    /// An ancestor is occupied: every byte below is granted.
    Occupied,
    /// An ancestor is entirely free: every byte below is free (and already
    /// counted as part of the ancestor's maximal free block).
    Free,
}

fn walk<T: TreeInspect + ?Sized>(
    tree: &T,
    g: &Geometry,
    n: usize,
    cover: Cover,
    snap: &mut OccupancySnapshot,
    free_subtrees: &mut Vec<(usize, usize)>,
) {
    let level = (g.level_of(n) - g.max_level()) as usize;
    let next = match cover {
        Cover::Occupied => {
            snap.levels[level].occupied += 1;
            Cover::Occupied
        }
        Cover::Free => {
            snap.levels[level].free += 1;
            Cover::Free
        }
        Cover::None => {
            let status = tree.node_status(n);
            if is_occupied(status) {
                snap.levels[level].occupied += 1;
                Cover::Occupied
            } else if is_free(status) {
                // Root of a maximal free subtree: account the whole block.
                snap.levels[level].free += 1;
                free_subtrees.push((g.offset_of(n), g.size_of(n)));
                Cover::Free
            } else {
                snap.levels[level].busy += 1;
                Cover::None
            }
        }
    };
    let left = g.left_child(n);
    if left <= g.node_count() {
        walk(tree, g, left, next, snap, free_subtrees);
        walk(tree, g, g.right_child(n), next, snap, free_subtrees);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuddyConfig;
    use crate::fourlvl::NbbsFourLevel;
    use crate::onelvl::NbbsOneLevel;
    use crate::traits::BuddyBackend;

    fn config() -> BuddyConfig {
        BuddyConfig::new(1 << 16, 64, 1 << 12).unwrap()
    }

    #[test]
    fn empty_tree_is_one_free_block() {
        let buddy = NbbsOneLevel::new(config());
        let snap = occupancy_of(&buddy);
        assert_eq!(snap.total_free_bytes, 1 << 16);
        assert_eq!(snap.largest_free_block, 1 << 16);
        assert_eq!(snap.free_blocks, 1);
        assert_eq!(snap.external_frag(), 1.0);
        assert_eq!(snap.merged_trees, 1);
        assert_eq!(
            snap.levels[0].chunk_size,
            1 << 12,
            "reporting starts at max_level"
        );
        for lvl in &snap.levels {
            assert_eq!(lvl.free, lvl.nodes, "everything below is covered-free");
            assert_eq!(lvl.fill(), 0.0);
        }
    }

    #[test]
    fn allocations_shrink_the_free_side() {
        let buddy = NbbsFourLevel::new(config());
        let a = buddy.alloc(4096).unwrap();
        let snap = occupancy_of(&buddy);
        assert_eq!(
            snap.total_free_bytes,
            (1 << 16) - 4096,
            "free bytes exclude the granted chunk"
        );
        assert!(snap.largest_free_block >= 1 << 15);
        assert_eq!(
            snap.levels[0].occupied, 1,
            "one max_level chunk is taken whole"
        );
        let leaf_level = snap.levels.last().unwrap();
        assert!(leaf_level.occupied >= 1, "covered leaves count as occupied");
        buddy.dealloc(a);
        let after = occupancy_of(&buddy);
        assert_eq!(after.total_free_bytes, 1 << 16);
        assert_eq!(after.free_blocks, 1);
    }

    #[test]
    fn interleaved_frees_fragment_the_tree() {
        let buddy = NbbsOneLevel::new(config());
        let offs: Vec<usize> = (0..8).map(|_| buddy.alloc(4096).unwrap()).collect();
        // Free every other chunk: the free space is shattered.
        for off in offs.iter().step_by(2) {
            buddy.dealloc(*off);
        }
        let snap = occupancy_of(&buddy);
        assert!(
            snap.free_blocks >= 4,
            "alternating frees leave many blocks: {snap:?}"
        );
        assert!(
            snap.external_frag() < 1.0,
            "largest block no longer covers all free bytes"
        );
        for off in offs.iter().skip(1).step_by(2) {
            buddy.dealloc(*off);
        }
        assert_eq!(occupancy_of(&buddy).free_blocks, 1, "coalesced back");
    }

    #[test]
    fn merge_folds_levels_and_extremes() {
        let a = NbbsOneLevel::new(config());
        let b = NbbsOneLevel::new(config());
        let _hold = b.alloc(4096).unwrap();
        let mut merged = occupancy_of(&a);
        merged.merge(&occupancy_of(&b));
        assert_eq!(merged.merged_trees, 2);
        assert_eq!(merged.total_free_bytes, 2 * (1 << 16) - 4096);
        assert_eq!(
            merged.largest_free_block,
            1 << 16,
            "blocks on different trees never merge"
        );
        assert_eq!(merged.levels[0].nodes, 32, "levels folded by chunk size");
    }

    #[test]
    fn free_chunks_name_the_maximal_free_subtrees() {
        let buddy = NbbsOneLevel::new(config());
        let snap = occupancy_of(&buddy);
        // An empty tree decomposes into its max_level blocks, in order.
        assert_eq!(snap.free_chunks.len(), 16);
        assert_eq!(snap.free_chunks[0], (0, 1 << 12));
        assert_eq!(snap.free_chunks[15], (15 << 12, 1 << 12));

        let held = buddy.alloc(4096).unwrap();
        let snap = occupancy_of(&buddy);
        assert!(
            snap.free_chunks
                .iter()
                .all(|&(off, size)| { off + size <= held || off >= held + 4096 }),
            "no free chunk overlaps the live block"
        );
        assert_eq!(
            snap.free_chunks.iter().map(|&(_, s)| s).sum::<usize>(),
            snap.total_free_bytes,
            "chunks account for every free byte"
        );
        for &(off, size) in &snap.free_chunks {
            assert!(
                size.is_power_of_two() && off % size == 0,
                "whole buddy blocks"
            );
        }
        buddy.dealloc(held);

        let mut shifted = occupancy_of(&buddy);
        shifted.shift_free_chunks(1 << 16);
        assert_eq!(shifted.free_chunks[0].0, 1 << 16);
        let mut merged = occupancy_of(&buddy);
        merged.merge(&shifted);
        assert_eq!(merged.free_chunks.len(), 32, "merge appends chunk lists");
    }

    #[test]
    fn occupancy_hook_reaches_through_the_trait() {
        let buddy: &dyn BuddyBackend = &NbbsFourLevel::new(config());
        let snap = buddy.occupancy().expect("trees answer the hook");
        assert_eq!(snap.total_free_bytes, 1 << 16);
        let arc = std::sync::Arc::new(NbbsOneLevel::new(config()));
        assert!(arc.occupancy().is_some(), "Arc forwards the hook");
        let by_ref: &NbbsOneLevel = &arc;
        assert!(
            BuddyBackend::occupancy(&by_ref).is_some(),
            "&T forwards the hook"
        );
    }
}
