//! Error types for allocator configuration, allocation, and release.

use std::fmt;

/// Errors produced while validating a [`crate::BuddyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `total_memory` is zero or not a power of two.
    TotalNotPowerOfTwo(usize),
    /// `min_size` is zero or not a power of two.
    MinNotPowerOfTwo(usize),
    /// `max_size` is zero or not a power of two.
    MaxNotPowerOfTwo(usize),
    /// `min_size` exceeds `max_size`.
    MinAboveMax {
        /// Requested minimum chunk size.
        min: usize,
        /// Requested maximum chunk size.
        max: usize,
    },
    /// `max_size` exceeds `total_memory`.
    MaxAboveTotal {
        /// Requested maximum chunk size.
        max: usize,
        /// Total managed memory.
        total: usize,
    },
    /// The resulting tree would be deeper than the supported limit.
    TooDeep {
        /// Tree depth implied by the configuration.
        depth: u32,
        /// Maximum supported depth.
        limit: u32,
    },
    /// A widened multi-node geometry ([`crate::Geometry::widened`]) would
    /// exceed the address space.
    WidenedTotalOverflow {
        /// Per-node managed bytes.
        per_node: usize,
        /// Widened slot count (node count rounded up to a power of two).
        slots: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TotalNotPowerOfTwo(v) => {
                write!(f, "total_memory ({v}) must be a non-zero power of two")
            }
            ConfigError::MinNotPowerOfTwo(v) => {
                write!(f, "min_size ({v}) must be a non-zero power of two")
            }
            ConfigError::MaxNotPowerOfTwo(v) => {
                write!(f, "max_size ({v}) must be a non-zero power of two")
            }
            ConfigError::MinAboveMax { min, max } => {
                write!(f, "min_size ({min}) must not exceed max_size ({max})")
            }
            ConfigError::MaxAboveTotal { max, total } => {
                write!(f, "max_size ({max}) must not exceed total_memory ({total})")
            }
            ConfigError::TooDeep { depth, limit } => {
                write!(f, "tree depth {depth} exceeds the supported limit {limit}")
            }
            ConfigError::WidenedTotalOverflow { per_node, slots } => {
                write!(
                    f,
                    "widened region ({per_node} B x {slots} slots) overflows the address space"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors produced by a fallible allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested size exceeds the allocator's `max_size`.
    TooLarge {
        /// Requested size in bytes.
        requested: usize,
        /// Largest size a single request may ask for.
        max_size: usize,
    },
    /// No free chunk of the required order is currently available.
    ///
    /// This is the buddy-system notion of exhaustion: enough total memory may
    /// be free, but it is fragmented across smaller or transiently-busy
    /// chunks.
    OutOfMemory {
        /// Requested size in bytes.
        requested: usize,
    },
    /// The attempt failed for a reason expected to clear shortly.
    ///
    /// Unlike [`AllocError::OutOfMemory`] — which means the required order is
    /// genuinely unavailable and must propagate immediately — a transient
    /// failure (a lost CAS storm, an in-flight coalesce holding the branch,
    /// or an injected fault from `nbbs-chaos`) is worth a bounded retry with
    /// backoff before the caller escalates.
    Transient {
        /// Requested size in bytes.
        requested: usize,
    },
}

impl AllocError {
    /// `true` for failures worth a bounded retry; `false` for hard failures
    /// ([`AllocError::TooLarge`], [`AllocError::OutOfMemory`]) that must
    /// propagate immediately.
    #[inline]
    pub fn is_transient(&self) -> bool {
        matches!(self, AllocError::Transient { .. })
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AllocError::TooLarge { requested, max_size } => write!(
                f,
                "requested {requested} bytes but the allocator serves at most {max_size} bytes per request"
            ),
            AllocError::OutOfMemory { requested } => {
                write!(f, "no free chunk available for a {requested}-byte request")
            }
            AllocError::Transient { requested } => {
                write!(
                    f,
                    "a {requested}-byte request failed transiently; a bounded retry may succeed"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Errors produced by a fallible release attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The offset lies outside the managed region.
    OutOfRange {
        /// Offending offset.
        offset: usize,
        /// Size of the managed region.
        total_memory: usize,
    },
    /// The offset is not aligned to the allocation unit.
    Misaligned {
        /// Offending offset.
        offset: usize,
        /// Allocation-unit size.
        min_size: usize,
    },
    /// The offset does not correspond to a live allocation.
    NotAllocated {
        /// Offending offset.
        offset: usize,
    },
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FreeError::OutOfRange {
                offset,
                total_memory,
            } => write!(
                f,
                "offset {offset} is outside the managed region of {total_memory} bytes"
            ),
            FreeError::Misaligned { offset, min_size } => write!(
                f,
                "offset {offset} is not aligned to the {min_size}-byte allocation unit"
            ),
            FreeError::NotAllocated { offset } => {
                write!(
                    f,
                    "offset {offset} does not correspond to a live allocation"
                )
            }
        }
    }
}

impl std::error::Error for FreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages_mention_values() {
        let e = ConfigError::MinAboveMax { min: 64, max: 32 };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("32"));
        let e = ConfigError::TooDeep {
            depth: 60,
            limit: 40,
        };
        assert!(e.to_string().contains("60"));
    }

    #[test]
    fn alloc_error_messages_mention_values() {
        let e = AllocError::TooLarge {
            requested: 1 << 20,
            max_size: 1 << 14,
        };
        assert!(e.to_string().contains(&(1usize << 20).to_string()));
        let e = AllocError::OutOfMemory { requested: 128 };
        assert!(e.to_string().contains("128"));
        let e = AllocError::Transient { requested: 256 };
        assert!(e.to_string().contains("256"));
    }

    #[test]
    fn only_transient_is_transient() {
        assert!(AllocError::Transient { requested: 8 }.is_transient());
        assert!(!AllocError::OutOfMemory { requested: 8 }.is_transient());
        assert!(!AllocError::TooLarge {
            requested: 8,
            max_size: 4
        }
        .is_transient());
    }

    #[test]
    fn free_error_messages_mention_values() {
        let e = FreeError::Misaligned {
            offset: 100,
            min_size: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(ConfigError::TotalNotPowerOfTwo(3));
        assert_err(AllocError::OutOfMemory { requested: 1 });
        assert_err(FreeError::NotAllocated { offset: 0 });
    }
}
