//! Backing memory for a buddy backend: turns offsets into real pointers.
//!
//! The allocator state machines in this crate are expressed over byte
//! offsets.  [`BuddyRegion`] owns an actual memory span of `total_memory`
//! bytes, aligned to the maximum chunk size (so that every chunk handed out
//! is naturally aligned to its own size, like physical page frames under the
//! kernel buddy allocator), and converts offsets to [`NonNull<u8>`] pointers
//! and back.  This is the only place where the crate touches raw memory.
//!
//! The span is a demand-zero [`Mapping`]: pages cost nothing until touched,
//! and the region can give quiescent pages *back*.  [`BuddyRegion::scrub_pass`]
//! walks the backend's occupancy snapshot, claims each maximal free block
//! through the ordinary allocation protocol
//! ([`BuddyBackend::scrub_claim`] — so a decommit can never race a live
//! chunk), releases its physical frames, and frees the block back.
//! [`BuddyRegion::start_scrubber`] runs that pass periodically on a
//! background thread, which makes the region *elastic*: committed memory
//! follows the live set down at trough instead of staying pinned at peak.
//! Recommit is automatic — the kernel faults fresh zero pages in on first
//! touch, and the grant path clears the accounting marks.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::{AllocError, FreeError};
use crate::mapping::Mapping;
use crate::stats::MemoryStatsSnapshot;
use crate::traits::BuddyBackend;

/// The state shared between a region and its scrubber thread.
struct RegionInner<A: BuddyBackend> {
    backend: A,
    mapping: Mapping,
    /// Ranges excluded from scrubbing (the OOM emergency reserve pins its
    /// blocks here so the path that needs them never takes a page fault).
    pinned: Mutex<Vec<(usize, usize)>>,
    scrub_passes: AtomicU64,
    scrub_blocks: AtomicU64,
    scrub_bytes: AtomicU64,
    trimmed_pages: AtomicU64,
}

impl<A: BuddyBackend> RegionInner<A> {
    fn overlaps_pinned(&self, offset: usize, size: usize) -> bool {
        let pinned = self.pinned.lock().unwrap_or_else(|e| e.into_inner());
        pinned
            .iter()
            .any(|&(p_off, p_len)| offset < p_off + p_len && p_off < offset + size)
    }

    /// One synchronous scrub pass; returns bytes newly decommitted.
    fn scrub_pass(&self) -> usize {
        let trimmed = self.backend.trim_empty_pages();
        if trimmed > 0 {
            self.trimmed_pages
                .fetch_add(trimmed as u64, Ordering::Relaxed);
        }
        let min_block = self.backend.min_size().max(self.mapping.page_size());
        let mut freed = 0usize;
        // The pruned free-chunk walk stops at `min_block` granularity —
        // sub-page blocks have no whole page to release anyway — so a pass
        // costs O(total / page_size) even on unit-granular trees.
        if let Some(chunks) = self.backend.free_chunks(min_block) {
            for &(off, size) in &chunks {
                if self.mapping.is_fully_decommitted(off, size) {
                    continue; // nothing left to release, skip the claim
                }
                if self.overlaps_pinned(off, size) {
                    continue;
                }
                // Claim-before-scrub: take the block through the ordinary
                // allocation protocol, so a stale snapshot entry (the block
                // gained an occupant since the walk) fails the CAS instead
                // of racing a live chunk.  One block is held at a time.
                if !self.backend.scrub_claim(off, size) {
                    continue;
                }
                let n = self.mapping.decommit(off, size);
                self.backend.scrub_dealloc(off);
                if n > 0 {
                    freed += n;
                    self.scrub_blocks.fetch_add(1, Ordering::Relaxed);
                    self.scrub_bytes.fetch_add(n as u64, Ordering::Relaxed);
                }
            }
        }
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        freed
    }
}

/// A running background scrubber.
struct ScrubberHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

/// A buddy backend plus the contiguous memory region it manages.
///
/// See the [crate docs](crate) for an example.
pub struct BuddyRegion<A: BuddyBackend> {
    inner: Arc<RegionInner<A>>,
    scrubber: Mutex<Option<ScrubberHandle>>,
}

impl<A: BuddyBackend> BuddyRegion<A> {
    /// Reserves a demand-zero backing region for `backend` and wraps it.
    ///
    /// The region is aligned to the backend's `max_size`, so a chunk of size
    /// `2^k` returned by [`BuddyRegion::alloc_bytes`] is always `2^k`-aligned.
    /// On Linux the backing is an anonymous private mapping — pages cost no
    /// physical memory until first touch; elsewhere it falls back to a
    /// zeroed heap allocation with the same observable behaviour.
    pub fn new(backend: A) -> Self {
        let total = backend.total_memory();
        let align = backend.max_size().max(std::mem::align_of::<usize>());
        let mapping = Mapping::new(total, align);
        BuddyRegion {
            inner: Arc::new(RegionInner {
                backend,
                mapping,
                pinned: Mutex::new(Vec::new()),
                scrub_passes: AtomicU64::new(0),
                scrub_blocks: AtomicU64::new(0),
                scrub_bytes: AtomicU64::new(0),
                trimmed_pages: AtomicU64::new(0),
            }),
            scrubber: Mutex::new(None),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &A {
        &self.inner.backend
    }

    /// Base address of the managed region.
    pub fn base(&self) -> NonNull<u8> {
        self.inner.mapping.base()
    }

    /// Total size of the managed region in bytes.
    pub fn total_memory(&self) -> usize {
        self.inner.backend.total_memory()
    }

    /// Clears the decommit accounting for a grant of `size` bytes at
    /// `offset` (the kernel recommits the frames lazily on first touch).
    fn note_grant(&self, offset: usize, size: usize) {
        let granted = self.inner.backend.granted_size_for(size).unwrap_or(size);
        self.inner.mapping.commit_range(offset, granted.max(size));
    }

    /// Allocates at least `size` bytes and returns a pointer into the region.
    pub fn alloc_bytes(&self, size: usize) -> Option<NonNull<u8>> {
        let offset = self.inner.backend.alloc(size)?;
        self.note_grant(offset, size);
        // SAFETY: `offset < total_memory`, so the resulting pointer stays
        // within the mapping backing this region.
        Some(unsafe { NonNull::new_unchecked(self.base().as_ptr().add(offset)) })
    }

    /// Fallible variant of [`BuddyRegion::alloc_bytes`].
    pub fn try_alloc_bytes(&self, size: usize) -> Result<NonNull<u8>, AllocError> {
        let offset = self.inner.backend.try_alloc(size)?;
        self.note_grant(offset, size);
        // SAFETY: as above.
        Ok(unsafe { NonNull::new_unchecked(self.base().as_ptr().add(offset)) })
    }

    /// Releases a pointer previously returned by [`BuddyRegion::alloc_bytes`].
    pub fn dealloc_bytes(&self, ptr: NonNull<u8>) {
        let offset = self.offset_of(ptr).expect("pointer outside the region");
        self.inner.backend.dealloc(offset);
    }

    /// Fallible release with validation of the pointer.
    pub fn try_dealloc_bytes(&self, ptr: NonNull<u8>) -> Result<(), FreeError> {
        match self.offset_of(ptr) {
            Some(offset) => self.inner.backend.try_dealloc(offset),
            None => Err(FreeError::OutOfRange {
                offset: ptr.as_ptr() as usize,
                total_memory: self.total_memory(),
            }),
        }
    }

    /// Converts a pointer inside the region back to its byte offset.
    pub fn offset_of(&self, ptr: NonNull<u8>) -> Option<usize> {
        let base = self.base().as_ptr() as usize;
        let addr = ptr.as_ptr() as usize;
        if addr < base || addr >= base + self.total_memory() {
            return None;
        }
        Some(addr - base)
    }

    /// Whether `ptr` points inside the managed region.
    pub fn contains(&self, ptr: NonNull<u8>) -> bool {
        self.offset_of(ptr).is_some()
    }

    /// Bytes currently handed out by the backend.
    pub fn allocated_bytes(&self) -> usize {
        self.inner.backend.allocated_bytes()
    }

    /// Bytes of the span currently committed — managed minus decommitted.
    /// An upper bound on the region's resident memory: pages never touched
    /// *and* never scrubbed count as committed (the bound converges once
    /// the scrubber has passed over the idle span).
    pub fn committed_bytes(&self) -> usize {
        self.inner.mapping.committed_bytes()
    }

    /// Total span the region manages, in bytes (alias of
    /// [`BuddyRegion::total_memory`], named for the committed/managed pair).
    pub fn managed_bytes(&self) -> usize {
        self.total_memory()
    }

    /// Point-in-time backing-memory accounting.
    pub fn memory_stats(&self) -> MemoryStatsSnapshot {
        let inner = &*self.inner;
        MemoryStatsSnapshot {
            managed_bytes: self.total_memory() as u64,
            committed_bytes: inner.mapping.committed_bytes() as u64,
            decommitted_bytes: inner.mapping.decommitted_bytes() as u64,
            scrub_passes: inner.scrub_passes.load(Ordering::Relaxed),
            scrub_blocks: inner.scrub_blocks.load(Ordering::Relaxed),
            scrub_bytes: inner.scrub_bytes.load(Ordering::Relaxed),
            recommitted_bytes: inner.mapping.recommit_bytes_total(),
            trimmed_pages: inner.trimmed_pages.load(Ordering::Relaxed),
        }
    }

    /// Excludes `[offset, offset + len)` from scrubbing and faults its
    /// pages in right now.  The OOM emergency reserve pins its carved
    /// blocks so a reserve hit never takes a page fault exactly when
    /// memory is tightest.  The caller must own the range.
    pub fn pin_range(&self, offset: usize, len: usize) {
        self.inner
            .pinned
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((offset, len));
        self.inner.mapping.pin_range(offset, len);
    }

    /// Clears the decommit accounting for `[offset, offset + len)`.  Used
    /// by front-ends that hand out region memory without going through
    /// [`BuddyRegion::alloc_bytes`] (e.g. a global-allocator facade working
    /// in raw offsets).
    pub fn commit_range(&self, offset: usize, len: usize) {
        self.inner.mapping.commit_range(offset, len);
    }

    /// One synchronous scrub pass: trims empty slab pages, then walks the
    /// backend's free blocks, claiming each quiescent one, releasing its
    /// physical frames and freeing it back.  Returns bytes newly
    /// decommitted.  Safe to call concurrently with allocation traffic —
    /// the claim is the ordinary allocation protocol, so the scrubber and
    /// the mutators resolve conflicts exactly like racing allocators.
    pub fn scrub_pass(&self) -> usize {
        self.inner.scrub_pass()
    }

    /// Starts the background scrubber thread (`nbbs-scrub`), running
    /// [`BuddyRegion::scrub_pass`] every `interval`.  A no-op if the
    /// scrubber is already running.  Stopped by
    /// [`BuddyRegion::stop_scrubber`] or when the region drops.
    pub fn start_scrubber(&self, interval: Duration)
    where
        A: 'static,
    {
        let mut guard = self.scrubber.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let inner = Arc::clone(&self.inner);
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("nbbs-scrub".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    inner.scrub_pass();
                    // Sleep in slices so stop requests are honoured promptly.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop_flag.load(Ordering::Acquire) {
                        let slice = (interval - slept).min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("failed to spawn nbbs-scrub");
        *guard = Some(ScrubberHandle { stop, thread });
    }

    /// Stops and joins the background scrubber, if running.
    pub fn stop_scrubber(&self) {
        let handle = self
            .scrubber
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.stop.store(true, Ordering::Release);
            let _ = h.thread.join();
        }
    }
}

impl<A: BuddyBackend> Drop for BuddyRegion<A> {
    fn drop(&mut self) {
        // The scrubber only holds the shared inner state (kept alive by its
        // Arc), but there is no reason to keep burning cycles for a region
        // that is going away.
        self.stop_scrubber();
    }
}

impl<A: BuddyBackend + std::fmt::Debug> std::fmt::Debug for BuddyRegion<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuddyRegion")
            .field("backend", &self.inner.backend)
            .field("base", &self.base())
            .field("committed_bytes", &self.committed_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::page_size;
    use crate::{BuddyConfig, NbbsFourLevel, NbbsOneLevel};

    fn region(total: usize, min: usize, max: usize) -> BuddyRegion<NbbsOneLevel> {
        BuddyRegion::new(NbbsOneLevel::new(
            BuddyConfig::new(total, min, max).unwrap(),
        ))
    }

    #[test]
    fn pointers_are_inside_the_region_and_aligned() {
        let r = region(1 << 16, 64, 1 << 12);
        let p = r.alloc_bytes(100).unwrap();
        assert!(r.contains(p));
        assert_eq!(r.offset_of(p).unwrap() % 128, 0);
        // Natural alignment: a 128-byte chunk is 128-byte aligned because the
        // base itself is max_size-aligned.
        assert_eq!(p.as_ptr() as usize % 128, 0);
        r.dealloc_bytes(p);
        assert_eq!(r.allocated_bytes(), 0);
    }

    #[test]
    fn memory_is_actually_usable() {
        let r = BuddyRegion::new(NbbsFourLevel::new(
            BuddyConfig::new(1 << 16, 64, 1 << 12).unwrap(),
        ));
        let p = r.alloc_bytes(4096).unwrap();
        // Write and read back through the pointer.
        unsafe {
            p.as_ptr().write_bytes(0x5A, 4096);
            assert_eq!(*p.as_ptr(), 0x5A);
            assert_eq!(*p.as_ptr().add(4095), 0x5A);
        }
        r.dealloc_bytes(p);
    }

    #[test]
    fn distinct_allocations_get_distinct_memory() {
        let r = region(1 << 14, 64, 1 << 10);
        let a = r.alloc_bytes(256).unwrap();
        let b = r.alloc_bytes(256).unwrap();
        unsafe {
            a.as_ptr().write_bytes(0x11, 256);
            b.as_ptr().write_bytes(0x22, 256);
            assert_eq!(*a.as_ptr(), 0x11);
            assert_eq!(*b.as_ptr(), 0x22);
        }
        r.dealloc_bytes(a);
        r.dealloc_bytes(b);
    }

    #[test]
    fn out_of_region_pointers_are_rejected() {
        let r = region(4096, 64, 4096);
        let mut outside = 0u8;
        let stray = NonNull::new(&mut outside as *mut u8).unwrap();
        assert!(!r.contains(stray));
        assert!(matches!(
            r.try_dealloc_bytes(stray),
            Err(FreeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn try_alloc_bytes_reports_exhaustion() {
        let r = region(1024, 64, 1024);
        let p = r.alloc_bytes(1024).unwrap();
        assert!(matches!(
            r.try_alloc_bytes(64),
            Err(AllocError::OutOfMemory { .. })
        ));
        r.dealloc_bytes(p);
        assert!(r.try_alloc_bytes(64).is_ok());
    }

    #[test]
    fn region_exposes_backend() {
        let r = region(4096, 64, 4096);
        assert_eq!(r.backend().name(), "1lvl-nb");
        assert_eq!(r.total_memory(), 4096);
    }

    #[test]
    fn scrub_pass_decommits_idle_memory_and_grants_recommit() {
        let page = page_size();
        // 64 top-level blocks of 4 pages each, all page-multiple.
        let total = page * 256;
        let r = region(total, page, page * 4);
        assert_eq!(r.committed_bytes(), total, "everything starts committed");

        // Dirty a block, free it, scrub: committed bytes fall to zero.
        let p = r.alloc_bytes(page * 4).unwrap();
        unsafe { p.as_ptr().write_bytes(0xEE, page * 4) };
        r.dealloc_bytes(p);
        let freed = r.scrub_pass();
        assert_eq!(freed, total, "idle region decommits end to end");
        assert_eq!(r.committed_bytes(), 0);
        let stats = r.memory_stats();
        assert_eq!(stats.scrub_passes, 1);
        assert_eq!(stats.scrub_bytes, total as u64);
        assert_eq!(stats.managed_bytes, total as u64);
        assert!(stats.scrub_blocks >= 1);

        // A second pass finds everything already decommitted.
        assert_eq!(r.scrub_pass(), 0);

        // Reuse after decommit: the memory reads zero and is writable, and
        // the grant recommits its pages in the accounting.
        let q = r.alloc_bytes(page * 4).unwrap();
        unsafe {
            for i in 0..page * 4 {
                assert_eq!(*q.as_ptr().add(i), 0, "decommitted block reads zero");
            }
            q.as_ptr().write_bytes(0x77, page * 4);
        }
        assert_eq!(r.committed_bytes(), page * 4);
        assert!(r.memory_stats().recommitted_bytes >= (page * 4) as u64);
        r.dealloc_bytes(q);
    }

    #[test]
    fn scrubber_skips_live_and_pinned_blocks() {
        let page = page_size();
        let total = page * 64;
        let r = region(total, page, page * 4);

        let live = r.alloc_bytes(page * 4).unwrap();
        unsafe { live.as_ptr().write_bytes(0xAB, page * 4) };
        let _live_off = r.offset_of(live).unwrap();

        // Pin another block (still free — pinning is about exclusion).
        let pinned = r.alloc_bytes(page * 4).unwrap();
        let pinned_off = r.offset_of(pinned).unwrap();
        unsafe { pinned.as_ptr().write_bytes(0xCD, page * 4) };
        r.pin_range(pinned_off, page * 4);
        r.dealloc_bytes(pinned);

        r.scrub_pass();
        // The live block kept its contents; the pinned range stayed
        // committed even though it is free.
        unsafe {
            assert_eq!(*live.as_ptr(), 0xAB);
            assert_eq!(*live.as_ptr().add(page * 4 - 1), 0xAB);
            assert_eq!(*r.base().as_ptr().add(pinned_off), 0xCD);
        }
        assert!(
            r.committed_bytes() >= page * 8,
            "live + pinned stay committed: {} < {}",
            r.committed_bytes(),
            page * 8
        );
        assert_eq!(
            r.allocated_bytes(),
            page * 4,
            "scrubber returned every claim"
        );
        r.dealloc_bytes(live);
    }

    #[test]
    fn background_scrubber_starts_stops_and_scrubs() {
        let page = page_size();
        let r = region(page * 64, page, page * 4);
        let p = r.alloc_bytes(page * 4).unwrap();
        unsafe { p.as_ptr().write_bytes(0x42, page * 4) };
        r.dealloc_bytes(p);

        r.start_scrubber(Duration::from_millis(1));
        r.start_scrubber(Duration::from_millis(1)); // idempotent
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while r.committed_bytes() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(r.committed_bytes(), 0, "background scrubber drained RSS");
        r.stop_scrubber();
        let passes = r.memory_stats().scrub_passes;
        assert!(passes >= 1);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            r.memory_stats().scrub_passes,
            passes,
            "stopped scrubber makes no more passes"
        );
        // Allocation still works after scrubbing stops.
        assert!(r.alloc_bytes(page).is_some());
    }

    #[test]
    fn sub_page_regions_survive_scrubbing() {
        // A region smaller than one page: nothing can be decommitted, but
        // nothing breaks either (fallback platforms would round to zero
        // pages the same way).
        let r = region(1024, 64, 1024);
        let p = r.alloc_bytes(512).unwrap();
        unsafe { p.as_ptr().write_bytes(0x99, 512) };
        assert_eq!(r.scrub_pass(), 0);
        unsafe { assert_eq!(*p.as_ptr(), 0x99) };
        assert_eq!(r.committed_bytes(), 1024);
        r.dealloc_bytes(p);
        assert_eq!(r.scrub_pass(), 0, "sub-page blocks are skipped");
    }
}
