//! Backing memory for a buddy backend: turns offsets into real pointers.
//!
//! The allocator state machines in this crate are expressed over byte
//! offsets.  [`BuddyRegion`] owns an actual heap region of `total_memory`
//! bytes, aligned to the maximum chunk size (so that every chunk handed out
//! is naturally aligned to its own size, like physical page frames under the
//! kernel buddy allocator), and converts offsets to [`NonNull<u8>`] pointers
//! and back.  This is the only place (together with [`crate::global`]) where
//! the crate touches raw memory.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

use crate::error::{AllocError, FreeError};
use crate::traits::BuddyBackend;

/// A buddy backend plus the contiguous memory region it manages.
///
/// See the [crate docs](crate) for an example.
pub struct BuddyRegion<A: BuddyBackend> {
    backend: A,
    base: NonNull<u8>,
    layout: Layout,
}

// SAFETY: the region's base pointer is only used through offsets handed out
// by the thread-safe backend; the region itself is immutable after
// construction.
unsafe impl<A: BuddyBackend> Send for BuddyRegion<A> {}
unsafe impl<A: BuddyBackend> Sync for BuddyRegion<A> {}

impl<A: BuddyBackend> BuddyRegion<A> {
    /// Allocates a zeroed backing region for `backend` and wraps it.
    ///
    /// The region is aligned to the backend's `max_size`, so a chunk of size
    /// `2^k` returned by [`BuddyRegion::alloc_bytes`] is always `2^k`-aligned.
    pub fn new(backend: A) -> Self {
        let total = backend.total_memory();
        let align = backend.max_size().max(std::mem::align_of::<usize>());
        let layout = Layout::from_size_align(total, align).expect("invalid region layout");
        // SAFETY: layout has non-zero size (configs guarantee total >= 1).
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout));
        BuddyRegion {
            backend,
            base,
            layout,
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &A {
        &self.backend
    }

    /// Base address of the managed region.
    pub fn base(&self) -> NonNull<u8> {
        self.base
    }

    /// Total size of the managed region in bytes.
    pub fn total_memory(&self) -> usize {
        self.backend.total_memory()
    }

    /// Allocates at least `size` bytes and returns a pointer into the region.
    pub fn alloc_bytes(&self, size: usize) -> Option<NonNull<u8>> {
        let offset = self.backend.alloc(size)?;
        // SAFETY: `offset < total_memory`, so the resulting pointer stays
        // within the allocation backing this region.
        Some(unsafe { NonNull::new_unchecked(self.base.as_ptr().add(offset)) })
    }

    /// Fallible variant of [`BuddyRegion::alloc_bytes`].
    pub fn try_alloc_bytes(&self, size: usize) -> Result<NonNull<u8>, AllocError> {
        let offset = self.backend.try_alloc(size)?;
        // SAFETY: as above.
        Ok(unsafe { NonNull::new_unchecked(self.base.as_ptr().add(offset)) })
    }

    /// Releases a pointer previously returned by [`BuddyRegion::alloc_bytes`].
    pub fn dealloc_bytes(&self, ptr: NonNull<u8>) {
        let offset = self.offset_of(ptr).expect("pointer outside the region");
        self.backend.dealloc(offset);
    }

    /// Fallible release with validation of the pointer.
    pub fn try_dealloc_bytes(&self, ptr: NonNull<u8>) -> Result<(), FreeError> {
        match self.offset_of(ptr) {
            Some(offset) => self.backend.try_dealloc(offset),
            None => Err(FreeError::OutOfRange {
                offset: ptr.as_ptr() as usize,
                total_memory: self.total_memory(),
            }),
        }
    }

    /// Converts a pointer inside the region back to its byte offset.
    pub fn offset_of(&self, ptr: NonNull<u8>) -> Option<usize> {
        let base = self.base.as_ptr() as usize;
        let addr = ptr.as_ptr() as usize;
        if addr < base || addr >= base + self.total_memory() {
            return None;
        }
        Some(addr - base)
    }

    /// Whether `ptr` points inside the managed region.
    pub fn contains(&self, ptr: NonNull<u8>) -> bool {
        self.offset_of(ptr).is_some()
    }

    /// Bytes currently handed out by the backend.
    pub fn allocated_bytes(&self) -> usize {
        self.backend.allocated_bytes()
    }
}

impl<A: BuddyBackend> Drop for BuddyRegion<A> {
    fn drop(&mut self) {
        // SAFETY: `base` was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.base.as_ptr(), self.layout) };
    }
}

impl<A: BuddyBackend + std::fmt::Debug> std::fmt::Debug for BuddyRegion<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuddyRegion")
            .field("backend", &self.backend)
            .field("base", &self.base)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuddyConfig, NbbsFourLevel, NbbsOneLevel};

    fn region(total: usize, min: usize, max: usize) -> BuddyRegion<NbbsOneLevel> {
        BuddyRegion::new(NbbsOneLevel::new(
            BuddyConfig::new(total, min, max).unwrap(),
        ))
    }

    #[test]
    fn pointers_are_inside_the_region_and_aligned() {
        let r = region(1 << 16, 64, 1 << 12);
        let p = r.alloc_bytes(100).unwrap();
        assert!(r.contains(p));
        assert_eq!(r.offset_of(p).unwrap() % 128, 0);
        // Natural alignment: a 128-byte chunk is 128-byte aligned because the
        // base itself is max_size-aligned.
        assert_eq!(p.as_ptr() as usize % 128, 0);
        r.dealloc_bytes(p);
        assert_eq!(r.allocated_bytes(), 0);
    }

    #[test]
    fn memory_is_actually_usable() {
        let r = BuddyRegion::new(NbbsFourLevel::new(
            BuddyConfig::new(1 << 16, 64, 1 << 12).unwrap(),
        ));
        let p = r.alloc_bytes(4096).unwrap();
        // Write and read back through the pointer.
        unsafe {
            p.as_ptr().write_bytes(0x5A, 4096);
            assert_eq!(*p.as_ptr(), 0x5A);
            assert_eq!(*p.as_ptr().add(4095), 0x5A);
        }
        r.dealloc_bytes(p);
    }

    #[test]
    fn distinct_allocations_get_distinct_memory() {
        let r = region(1 << 14, 64, 1 << 10);
        let a = r.alloc_bytes(256).unwrap();
        let b = r.alloc_bytes(256).unwrap();
        unsafe {
            a.as_ptr().write_bytes(0x11, 256);
            b.as_ptr().write_bytes(0x22, 256);
            assert_eq!(*a.as_ptr(), 0x11);
            assert_eq!(*b.as_ptr(), 0x22);
        }
        r.dealloc_bytes(a);
        r.dealloc_bytes(b);
    }

    #[test]
    fn out_of_region_pointers_are_rejected() {
        let r = region(4096, 64, 4096);
        let mut outside = 0u8;
        let stray = NonNull::new(&mut outside as *mut u8).unwrap();
        assert!(!r.contains(stray));
        assert!(matches!(
            r.try_dealloc_bytes(stray),
            Err(FreeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn try_alloc_bytes_reports_exhaustion() {
        let r = region(1024, 64, 1024);
        let p = r.alloc_bytes(1024).unwrap();
        assert!(matches!(
            r.try_alloc_bytes(64),
            Err(AllocError::OutOfMemory { .. })
        ));
        r.dealloc_bytes(p);
        assert!(r.try_alloc_bytes(64).is_ok());
    }

    #[test]
    fn region_exposes_backend() {
        let r = region(4096, 64, 4096);
        assert_eq!(r.backend().name(), "1lvl-nb");
        assert_eq!(r.total_memory(), 4096);
    }
}
