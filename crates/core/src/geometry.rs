//! Tree geometry: the mapping between tree nodes, levels, sizes and offsets.
//!
//! The paper represents the buddy tree as an array `tree[]` of `2^(d+1) - 1`
//! elements with the root at index 1, the left child of node `n` at `2n` and
//! the right child at `2n + 1` (Figure 2).  Nodes of the same level are then
//! contiguous in the array, which makes the level scan of `NBALLOC` a linear
//! walk.  This module implements Rules (1)–(3) of §III-A:
//!
//! ```text
//! level(n)   = ⌊log2(n)⌋                                  (1)
//! size(n)    = total_memory / 2^level(n)                  (2)
//! offset(n)  = (n − 2^level(n)) · size(n)                 (3)
//! ```
//!
//! plus the inverse mappings needed by `NBFREE` (offset → allocation-unit
//! index → node) and by the allocation path (request size → target level).

use crate::config::BuddyConfig;

/// Immutable description of the buddy tree induced by a [`BuddyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    total_memory: usize,
    min_size: usize,
    max_size: usize,
    depth: u32,
    max_level: u32,
}

impl Geometry {
    /// Builds the geometry for a validated configuration.
    pub fn new(config: &BuddyConfig) -> Self {
        Geometry {
            total_memory: config.total_memory(),
            min_size: config.min_size(),
            max_size: config.max_size(),
            depth: config.depth(),
            max_level: config.max_level(),
        }
    }

    /// Total managed memory in bytes.
    #[inline]
    pub fn total_memory(&self) -> usize {
        self.total_memory
    }

    /// Allocation-unit (leaf) size in bytes.
    #[inline]
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Largest size a single request may obtain.
    #[inline]
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Depth of the tree (level of the leaves; the root is level 0).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Topmost allocatable level (paper's `max_level`).
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of nodes in the tree (`2^(depth+1) - 1`).
    #[inline]
    pub fn node_count(&self) -> usize {
        (1usize << (self.depth + 1)) - 1
    }

    /// Length of the `tree[]` array (index 0 is unused, root at index 1).
    #[inline]
    pub fn tree_len(&self) -> usize {
        1usize << (self.depth + 1)
    }

    /// Number of allocation units, i.e. leaves / entries of `index[]`.
    #[inline]
    pub fn unit_count(&self) -> usize {
        self.total_memory / self.min_size
    }

    /// Rule (1): level of node `n`.
    #[inline]
    pub fn level_of(&self, n: usize) -> u32 {
        debug_assert!(n >= 1 && n < self.tree_len(), "node {n} out of range");
        usize::BITS - 1 - n.leading_zeros()
    }

    /// Rule (2): size in bytes of the chunk tracked by a node at `level`.
    #[inline]
    pub fn size_of_level(&self, level: u32) -> usize {
        debug_assert!(level <= self.depth);
        self.total_memory >> level
    }

    /// Rule (2): size in bytes of the chunk tracked by node `n`.
    #[inline]
    pub fn size_of(&self, n: usize) -> usize {
        self.size_of_level(self.level_of(n))
    }

    /// Rule (3): byte offset (from the start of the managed region) of the
    /// chunk tracked by node `n`.
    #[inline]
    pub fn offset_of(&self, n: usize) -> usize {
        let level = self.level_of(n);
        (n - (1usize << level)) * self.size_of_level(level)
    }

    /// First node index of `level` (nodes of a level are contiguous).
    #[inline]
    pub fn first_node_of_level(&self, level: u32) -> usize {
        1usize << level
    }

    /// Number of nodes at `level`.
    #[inline]
    pub fn nodes_at_level(&self, level: u32) -> usize {
        1usize << level
    }

    /// Node index of the `position`-th node (0-based, left to right) at `level`.
    #[inline]
    pub fn node_at(&self, level: u32, position: usize) -> usize {
        debug_assert!(position < self.nodes_at_level(level));
        (1usize << level) + position
    }

    /// The deepest level whose chunks are large enough to satisfy `size`
    /// bytes, i.e. the paper's
    /// `level = min(depth, ⌊log2(total_memory / size)⌋)`.
    ///
    /// Requests smaller than the allocation unit are rounded up to it;
    /// requests larger than [`Geometry::max_size`] have no valid level and
    /// return `None`.
    #[inline]
    pub fn target_level(&self, size: usize) -> Option<u32> {
        if size > self.max_size {
            return None;
        }
        let size = size.max(self.min_size).max(1);
        let level = (self.total_memory / size).ilog2();
        Some(level.min(self.depth))
    }

    /// Size actually delivered for a request of `size` bytes (the chunk size
    /// of the target level), or `None` if the request exceeds `max_size`.
    #[inline]
    pub fn granted_size(&self, size: usize) -> Option<usize> {
        self.target_level(size).map(|l| self.size_of_level(l))
    }

    /// Allocation-unit index of a byte offset (the `index[]` slot the paper
    /// uses: `(starting − base_address) / min_size`).
    #[inline]
    pub fn unit_of_offset(&self, offset: usize) -> usize {
        debug_assert!(offset < self.total_memory);
        debug_assert_eq!(offset % self.min_size, 0);
        offset / self.min_size
    }

    /// Leaf node index tracking the allocation unit that starts at `offset`.
    #[inline]
    pub fn leaf_of_offset(&self, offset: usize) -> usize {
        (1usize << self.depth) + self.unit_of_offset(offset)
    }

    /// Parent of node `n` (the root has no parent).
    #[inline]
    pub fn parent(&self, n: usize) -> usize {
        debug_assert!(n > 1);
        n >> 1
    }

    /// Buddy (sibling) of node `n`.
    #[inline]
    pub fn buddy(&self, n: usize) -> usize {
        debug_assert!(n > 1);
        n ^ 1
    }

    /// Left child of node `n`.
    #[inline]
    pub fn left_child(&self, n: usize) -> usize {
        n << 1
    }

    /// Right child of node `n`.
    #[inline]
    pub fn right_child(&self, n: usize) -> usize {
        (n << 1) | 1
    }

    /// Whether node `a` is an ancestor of (or equal to) node `b`.
    #[inline]
    pub fn is_ancestor_or_self(&self, a: usize, b: usize) -> bool {
        let la = self.level_of(a);
        let lb = self.level_of(b);
        lb >= la && (b >> (lb - la)) == a
    }

    /// The half-open byte range `[start, end)` covered by node `n`.
    #[inline]
    pub fn byte_range(&self, n: usize) -> (usize, usize) {
        let start = self.offset_of(n);
        (start, start + self.size_of(n))
    }

    /// The *widened* multi-node geometry spanning `node_count` instances of
    /// this geometry.
    ///
    /// Multi-node deployments (`nbbs-numa`'s `NodeSet`) pack the node index
    /// into the high bits of a global offset: node `i` owns the range
    /// `[i << widening_shift(), (i + 1) << widening_shift())`.  To keep the
    /// global offset space a valid power-of-two buddy geometry (so a
    /// `NodeSet` can itself implement `BuddyBackend`), the node count is
    /// rounded up to the next power of two — offsets in the phantom tail
    /// beyond the real nodes are simply never produced.  `min_size` and
    /// `max_size` carry over unchanged: a single request is always served by
    /// one node, so the per-request ceiling does not widen.
    ///
    /// Fails when the widened region would exceed the supported tree depth
    /// or overflow `usize`.
    pub fn widened(&self, node_count: usize) -> Result<Geometry, crate::error::ConfigError> {
        let slots = node_count.max(1).next_power_of_two();
        let widened_total = self.total_memory.checked_mul(slots).ok_or(
            crate::error::ConfigError::WidenedTotalOverflow {
                per_node: self.total_memory,
                slots,
            },
        )?;
        let config = BuddyConfig::new(widened_total, self.min_size, self.max_size)?;
        Ok(Geometry::new(&config))
    }

    /// The shift that packs a node index into (and extracts it out of) a
    /// widened global offset: `log2(total_memory)` of the per-node geometry.
    ///
    /// `global = (node << shift) | local` and `node = global >> shift`,
    /// `local = global & (total_memory - 1)` — pure arithmetic, no search.
    #[inline]
    pub fn widening_shift(&self) -> u32 {
        self.total_memory.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(total: usize, min: usize, max: usize) -> Geometry {
        Geometry::new(&BuddyConfig::new(total, min, max).unwrap())
    }

    #[test]
    fn figure_2_example_levels() {
        // Figure 2: a depth-3 tree, indices 1..=15.
        let g = geo(8 * 64, 64, 8 * 64);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.tree_len(), 16);
        assert_eq!(g.level_of(1), 0);
        assert_eq!(g.level_of(2), 1);
        assert_eq!(g.level_of(3), 1);
        assert_eq!(g.level_of(7), 2);
        assert_eq!(g.level_of(8), 3);
        assert_eq!(g.level_of(15), 3);
    }

    #[test]
    fn rule_2_sizes_halve_per_level() {
        let g = geo(1 << 16, 16, 1 << 16);
        assert_eq!(g.size_of_level(0), 1 << 16);
        assert_eq!(g.size_of_level(1), 1 << 15);
        assert_eq!(g.size_of_level(g.depth()), 16);
        assert_eq!(g.size_of(1), 1 << 16);
        assert_eq!(g.size_of(2), 1 << 15);
        assert_eq!(g.size_of(3), 1 << 15);
    }

    #[test]
    fn rule_3_offsets_tile_each_level() {
        let g = geo(1024, 64, 1024);
        for level in 0..=g.depth() {
            let size = g.size_of_level(level);
            for pos in 0..g.nodes_at_level(level) {
                let n = g.node_at(level, pos);
                assert_eq!(g.offset_of(n), pos * size, "node {n}");
            }
        }
    }

    #[test]
    fn byte_ranges_of_children_partition_parent() {
        let g = geo(4096, 64, 4096);
        for n in 1..g.tree_len() / 2 {
            let (ps, pe) = g.byte_range(n);
            let (ls, le) = g.byte_range(g.left_child(n));
            let (rs, re) = g.byte_range(g.right_child(n));
            assert_eq!(ps, ls);
            assert_eq!(le, rs);
            assert_eq!(re, pe);
        }
    }

    #[test]
    fn target_level_picks_smallest_sufficient_chunk() {
        let g = geo(1 << 20, 8, 1 << 14);
        assert_eq!(g.target_level(8), Some(g.depth()));
        assert_eq!(g.target_level(1), Some(g.depth())); // rounded to min_size
        assert_eq!(g.target_level(9), Some(g.depth() - 1));
        assert_eq!(g.target_level(16), Some(g.depth() - 1));
        assert_eq!(g.target_level(1 << 14), Some(g.max_level()));
        assert_eq!(g.target_level((1 << 14) + 1), None);
        assert_eq!(g.target_level(usize::MAX), None);
    }

    #[test]
    fn granted_size_is_at_least_requested() {
        let g = geo(1 << 20, 8, 1 << 14);
        for req in [1usize, 7, 8, 9, 100, 128, 1000, 1024, 5000, 1 << 14] {
            let granted = g.granted_size(req).unwrap();
            assert!(granted >= req, "req {req} granted {granted}");
            assert!(granted.is_power_of_two());
            // Never more than twice the (rounded-up) request.
            assert!(granted < 2 * req.max(8).next_power_of_two());
        }
    }

    #[test]
    fn target_level_respects_max_level() {
        let g = geo(1 << 20, 8, 1 << 14);
        // max_level = log2(2^20 / 2^14) = 6; no allocatable level above it.
        assert_eq!(g.max_level(), 6);
        assert!(g.target_level(1 << 14).unwrap() >= g.max_level());
    }

    #[test]
    fn leaf_and_unit_round_trip() {
        let g = geo(1 << 12, 64, 1 << 12);
        for unit in 0..g.unit_count() {
            let offset = unit * g.min_size();
            assert_eq!(g.unit_of_offset(offset), unit);
            let leaf = g.leaf_of_offset(offset);
            assert_eq!(g.level_of(leaf), g.depth());
            assert_eq!(g.offset_of(leaf), offset);
        }
    }

    #[test]
    fn parent_child_buddy_relationships() {
        let g = geo(1024, 64, 1024);
        assert_eq!(g.parent(2), 1);
        assert_eq!(g.parent(3), 1);
        assert_eq!(g.parent(7), 3);
        assert_eq!(g.buddy(2), 3);
        assert_eq!(g.buddy(3), 2);
        assert_eq!(g.buddy(8), 9);
        assert_eq!(g.left_child(3), 6);
        assert_eq!(g.right_child(3), 7);
    }

    #[test]
    fn ancestor_predicate() {
        let g = geo(1024, 64, 1024);
        assert!(g.is_ancestor_or_self(1, 9));
        assert!(g.is_ancestor_or_self(2, 9));
        assert!(g.is_ancestor_or_self(4, 9));
        assert!(g.is_ancestor_or_self(9, 9));
        assert!(!g.is_ancestor_or_self(3, 9));
        assert!(!g.is_ancestor_or_self(9, 4));
        assert!(!g.is_ancestor_or_self(8, 9));
    }

    #[test]
    fn widened_geometry_rounds_nodes_to_a_power_of_two() {
        let g = geo(1 << 16, 64, 1 << 12);
        assert_eq!(g.widening_shift(), 16);
        for (nodes, slots) in [(1usize, 1usize), (2, 2), (3, 4), (4, 4), (5, 8)] {
            let w = g.widened(nodes).unwrap();
            assert_eq!(w.total_memory(), slots << 16, "{nodes} nodes");
            assert_eq!(w.min_size(), 64);
            assert_eq!(w.max_size(), 1 << 12);
            // Granted sizes are unchanged by widening: a request is always
            // served by one node.
            for req in [1usize, 64, 100, 4096] {
                assert_eq!(w.granted_size(req), g.granted_size(req), "req {req}");
            }
            assert_eq!(w.granted_size(1 << 13), None, "per-node ceiling kept");
        }
    }

    #[test]
    fn widened_geometry_rejects_overflow_and_excess_depth() {
        use crate::error::ConfigError;
        let g = geo(1 << 16, 64, 1 << 12);
        assert!(matches!(
            g.widened(usize::MAX / 4),
            Err(ConfigError::WidenedTotalOverflow { .. })
        ));
        // Depth cap: widening a deep tree past MAX_DEPTH must fail cleanly.
        let deep = geo(1 << 30, 1, 1 << 10);
        assert!(matches!(
            deep.widened(1 << 4),
            Err(ConfigError::TooDeep { .. })
        ));
    }

    #[test]
    fn degenerate_single_leaf_geometry() {
        let g = geo(128, 128, 128);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.tree_len(), 2);
        assert_eq!(g.unit_count(), 1);
        assert_eq!(g.target_level(128), Some(0));
        assert_eq!(g.target_level(1), Some(0));
        assert_eq!(g.offset_of(1), 0);
        assert_eq!(g.size_of(1), 128);
    }
}
