//! Common interfaces implemented by every back-end allocator in the
//! reproduction (the non-blocking variants, their spin-locked counterparts
//! and the baselines in `nbbs-baselines`).
//!
//! The interface is expressed in terms of **byte offsets** into the managed
//! region rather than raw pointers.  This keeps the allocator state machines
//! free of `unsafe`, makes them trivially testable (no backing memory is
//! required) and mirrors how the paper's kernel-level experiment treats the
//! buddy system: as a service that hands out page-frame numbers, with the
//! mapping to addresses applied by a thin outer layer
//! ([`crate::BuddyRegion`] here).

use crate::error::{AllocError, FreeError};
use crate::geometry::Geometry;
use crate::occupancy::OccupancySnapshot;
use crate::stats::{CacheStatsSnapshot, FragStatsSnapshot, OpStatsSnapshot};

/// A concurrent back-end buddy allocator over a contiguous region.
///
/// All methods take `&self`: implementations must be safe to call from any
/// number of threads concurrently.  The *non-blocking* implementations in
/// this crate additionally guarantee lock-freedom (some thread always makes
/// progress); the `-sl` variants and baselines serialize internally.
pub trait BuddyBackend: Send + Sync {
    /// Short, stable identifier used in benchmark reports
    /// (e.g. `"1lvl-nb"`, `"4lvl-nb"`, `"buddy-sl"`, `"linux-buddy"`).
    fn name(&self) -> &'static str;

    /// Geometry of the managed region (sizes, depth, level math).
    fn geometry(&self) -> &Geometry;

    /// Allocates a chunk of at least `size` bytes.
    ///
    /// Returns the byte offset of the chunk within the managed region, or
    /// `None` if the request exceeds the per-request maximum or no suitable
    /// free chunk is currently available.  The chunk actually reserved is the
    /// smallest power-of-two size able to hold `size`
    /// (see [`Geometry::granted_size`]).
    fn alloc(&self, size: usize) -> Option<usize>;

    /// Releases the chunk starting at `offset`.
    ///
    /// `offset` must be a value previously returned by [`BuddyBackend::alloc`]
    /// on this instance and not released since; passing anything else is a
    /// logic error (checked variants are available via
    /// [`BuddyBackend::try_dealloc`]).
    fn dealloc(&self, offset: usize);

    /// Fallible allocation reporting *why* the request could not be served.
    fn try_alloc(&self, size: usize) -> Result<usize, AllocError> {
        if size > self.geometry().max_size() {
            return Err(AllocError::TooLarge {
                requested: size,
                max_size: self.geometry().max_size(),
            });
        }
        self.alloc(size)
            .ok_or(AllocError::OutOfMemory { requested: size })
    }

    /// Fallible release that validates the offset before acting.
    ///
    /// Implementations reject offsets that are out of range, misaligned, or
    /// do not correspond to a live allocation *when that can be detected
    /// cheaply*; a full double-free detector is not required (nor provided by
    /// the paper's design).
    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError>;

    /// Total managed memory in bytes.
    ///
    /// Defaults to the geometry's span; multi-node backends override it to
    /// their *logical* span (a widened geometry rounds the node count up to
    /// a power of two, and the phantom tail manages nothing), and wrappers
    /// forward it so backing-memory layers never commit phantom bytes.
    fn total_memory(&self) -> usize {
        self.geometry().total_memory()
    }

    /// Allocation-unit size in bytes.
    fn min_size(&self) -> usize {
        self.geometry().min_size()
    }

    /// Largest size a single request may obtain.
    fn max_size(&self) -> usize {
        self.geometry().max_size()
    }

    /// Bytes currently handed out (sum of granted chunk sizes).
    ///
    /// Maintained with relaxed atomic counters; exact once the allocator is
    /// quiescent, approximate while operations are in flight.
    fn allocated_bytes(&self) -> usize;

    /// Operation counters (all zeros unless the `op-stats` feature is on).
    fn stats(&self) -> OpStatsSnapshot {
        OpStatsSnapshot::default()
    }

    /// The granted (power-of-two) size of the live allocation starting at
    /// `offset`, or `None` if the backend cannot cheaply tell or no live
    /// allocation starts there.
    ///
    /// Caching front-ends use this on their release path to find the size
    /// class of an offset they are handed: [`BuddyBackend::dealloc`] carries
    /// no size, but a magazine can only absorb a chunk whose class it knows.
    /// The tree-based allocators answer from `index[]` + the node status (the
    /// same lookup their own `dealloc` performs); backends without such
    /// metadata keep the default `None`, which makes caches pass their frees
    /// straight through.
    ///
    /// Like `dealloc`, this is only meaningful for offsets owned by the
    /// caller (returned by `alloc` and not yet released); concurrent
    /// operations on *other* chunks never invalidate the answer.
    fn granted_size_of_live(&self, _offset: usize) -> Option<usize> {
        None
    }

    /// The size a request of `size` bytes *would* be granted, without
    /// allocating anything, or `None` if the request exceeds the per-request
    /// maximum.  For the plain trees this is the smallest power of two able
    /// to hold `size`; a slab front-end reports its (possibly non-power-of-
    /// two) size class instead, which is why callers must not assume the
    /// answer is a power of two.
    ///
    /// This is the layout-aware companion to
    /// [`BuddyBackend::granted_size_of_live`]: because the granted size is a
    /// pure function of the request size, a front end that knows what it
    /// asked for (e.g. the `nbbs-alloc` facade, which always has the
    /// caller's `Layout` in hand) can decide whether an in-place
    /// `grow`/`shrink` fits inside the block it already holds — no tree walk,
    /// no `index[]` lookup, just level math.  The default answers from the
    /// geometry; wrappers forward to their backend so the answer reflects
    /// the innermost grant policy.
    fn granted_size_for(&self, size: usize) -> Option<usize> {
        self.geometry().granted_size(size)
    }

    /// The *guaranteed alignment* of the block a request of `size` bytes
    /// would be granted, or `None` if the request exceeds the per-request
    /// maximum.
    ///
    /// Buddy grants are naturally aligned (a power-of-two chunk sits at a
    /// multiple of its own size), so the default answers
    /// [`BuddyBackend::granted_size_for`].  Slab front-ends override it:
    /// a 40-byte class object is only guaranteed the class *granule*
    /// alignment (the largest power of two dividing the class size), so the
    /// facade bumps over-aligned requests to the next power-of-two class —
    /// whose natural alignment is restored — before allocating.
    fn grant_alignment_for(&self, size: usize) -> Option<usize> {
        self.granted_size_for(size)
    }

    /// Per-class fragmentation counters of a slab layer wrapped around this
    /// backend, if any.
    ///
    /// Plain backends return `None`; the `nbbs-slab` front-end (and wrappers
    /// that contain one) override this so reports can surface the
    /// bytes-requested / bytes-committed ratio through `dyn BuddyBackend`
    /// without downcasting.
    fn frag_stats(&self) -> Option<FragStatsSnapshot> {
        None
    }

    /// Counters of the caching layer wrapped around this backend, if any.
    ///
    /// Plain backends return `None`; cache front-ends (and wrappers that
    /// contain one) override this so reports can surface hit rates through
    /// `dyn BuddyBackend` without downcasting.
    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        None
    }

    /// Per-size-class magazine capacities of the caching layer wrapped
    /// around this backend, as `(class_size, capacity)` pairs in ascending
    /// class order, or `None` for plain backends.
    ///
    /// The adaptive resize controller (`nbbs-cache`) moves these capacities
    /// at runtime; reports use this hook to show what geometry each class
    /// converged to without downcasting through `dyn BuddyBackend`.
    fn cache_class_capacities(&self) -> Option<Vec<(usize, usize)>> {
        None
    }

    /// Returns any chunks parked in caching layers to the backing allocator.
    ///
    /// A no-op for plain backends.  Cache front-ends override this to flush
    /// every magazine and depot, making the full region available to
    /// *backend*-level requests again — the analogue of the Linux kernel
    /// draining its per-CPU page lists before falling back across zones.
    /// Callers use it at quiescent points (between benchmark epochs, before
    /// capacity assertions or metadata audits).
    fn drain_cache(&self) {}

    /// Point-in-time tree occupancy (per-level fill, maximal free blocks,
    /// external fragmentation), or `None` for backends without a status
    /// tree to walk.
    ///
    /// The tree-based allocators answer via
    /// [`crate::occupancy::occupancy_of`]; wrappers forward so reports can
    /// render the occupancy heatmap through `dyn BuddyBackend`, and
    /// multi-node backends merge one snapshot per node.  Like every other
    /// snapshot the answer is exact at quiescence and best-effort while
    /// operations are in flight.
    fn occupancy(&self) -> Option<OccupancySnapshot> {
        None
    }

    /// Maximal free blocks of at least `min_size` bytes, ascending by
    /// offset, or `None` for backends without a status tree to walk.
    ///
    /// This is the decommit scrubber's fast path: the tree backends answer
    /// via [`crate::occupancy::free_chunks_of`], which prunes subtrees too
    /// small to matter instead of descending to allocation units, so a
    /// page-granular poll costs `O(total / page_size)` rather than a full
    /// occupancy snapshot.  The default derives the answer from
    /// [`BuddyBackend::occupancy`] by filtering; wrappers forward to their
    /// inner backend so the pruned walk is reached through layers.
    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        Some(
            self.occupancy()?
                .free_chunks
                .into_iter()
                .filter(|&(_, size)| size >= min_size)
                .collect(),
        )
    }

    /// Claims the *specific* free block `[offset, offset + size)` for
    /// maintenance, bypassing any caching layers.  Returns `true` when the
    /// claim succeeded — the caller now owns the block exactly as if
    /// [`BuddyBackend::alloc`] had returned it and must release it with
    /// [`BuddyBackend::scrub_dealloc`].
    ///
    /// The decommit scrubber drives this with the `free_chunks` of an
    /// [`OccupancySnapshot`]: claim the quiescent block, release its
    /// physical frames, free it back.  A targeted claim (rather than an
    /// anonymous `alloc(size)`) is what gives the scrubber full coverage —
    /// the scan cursors would keep handing it the block it just freed —
    /// and a stale snapshot entry fails harmlessly: the claim is the same
    /// CAS protocol as allocation, so it refuses any block that gained an
    /// occupant since the walk.  Backends without a status tree keep the
    /// default `false`, which makes scrubbing inert on them.
    fn scrub_claim(&self, _offset: usize, _size: usize) -> bool {
        false
    }

    /// Releases a block claimed by [`BuddyBackend::scrub_claim`], bypassing
    /// any caching layers (a scrubbed block parked in a magazine could
    /// never coalesce or be claimed again).  Defaults to
    /// [`BuddyBackend::dealloc`]; cache front-ends forward past their
    /// magazines.
    fn scrub_dealloc(&self, offset: usize) {
        self.dealloc(offset)
    }

    /// Asks slab-style layers to return empty pages they were keeping
    /// warm to the backing buddy, so the scrubber can decommit them.
    /// Returns how many pages were released; plain backends keep the
    /// default `0`.
    fn trim_empty_pages(&self) -> usize {
        0
    }
}

/// Read-only access to the logical status of every tree node.
///
/// Implemented by the tree-based allocators so that [`crate::verify`] can
/// audit the paper's safety properties over a quiescent instance.  For the
/// 4-level variant the returned status is the *derived* one (Figure 6).
pub trait TreeInspect {
    /// Geometry of the underlying tree.
    fn inspect_geometry(&self) -> &Geometry;

    /// Logical 5-bit status of node `n` (1-based index, root = 1).
    fn node_status(&self, n: usize) -> u8;

    /// The node recorded in `index[]` for the allocation unit `unit`, if any
    /// entry was ever written there.  Entries are not cleared on release, so
    /// a `Some` value may be stale; callers must cross-check with
    /// [`TreeInspect::node_status`].
    fn recorded_node_of_unit(&self, unit: usize) -> Option<usize>;
}

impl<T: BuddyBackend + ?Sized> BuddyBackend for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn alloc(&self, size: usize) -> Option<usize> {
        (**self).alloc(size)
    }
    fn dealloc(&self, offset: usize) {
        (**self).dealloc(offset)
    }
    fn try_alloc(&self, size: usize) -> Result<usize, AllocError> {
        (**self).try_alloc(size)
    }
    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        (**self).try_dealloc(offset)
    }
    fn total_memory(&self) -> usize {
        (**self).total_memory()
    }
    fn allocated_bytes(&self) -> usize {
        (**self).allocated_bytes()
    }
    fn stats(&self) -> OpStatsSnapshot {
        (**self).stats()
    }
    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        (**self).granted_size_of_live(offset)
    }
    fn granted_size_for(&self, size: usize) -> Option<usize> {
        (**self).granted_size_for(size)
    }
    fn grant_alignment_for(&self, size: usize) -> Option<usize> {
        (**self).grant_alignment_for(size)
    }
    fn frag_stats(&self) -> Option<FragStatsSnapshot> {
        (**self).frag_stats()
    }
    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        (**self).cache_stats()
    }
    fn cache_class_capacities(&self) -> Option<Vec<(usize, usize)>> {
        (**self).cache_class_capacities()
    }
    fn drain_cache(&self) {
        (**self).drain_cache()
    }
    fn occupancy(&self) -> Option<OccupancySnapshot> {
        (**self).occupancy()
    }
    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        (**self).free_chunks(min_size)
    }
    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        (**self).scrub_claim(offset, size)
    }
    fn scrub_dealloc(&self, offset: usize) {
        (**self).scrub_dealloc(offset)
    }
    fn trim_empty_pages(&self) -> usize {
        (**self).trim_empty_pages()
    }
}

impl<T: BuddyBackend + ?Sized> BuddyBackend for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn geometry(&self) -> &Geometry {
        (**self).geometry()
    }
    fn alloc(&self, size: usize) -> Option<usize> {
        (**self).alloc(size)
    }
    fn dealloc(&self, offset: usize) {
        (**self).dealloc(offset)
    }
    fn try_alloc(&self, size: usize) -> Result<usize, AllocError> {
        (**self).try_alloc(size)
    }
    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        (**self).try_dealloc(offset)
    }
    fn total_memory(&self) -> usize {
        (**self).total_memory()
    }
    fn allocated_bytes(&self) -> usize {
        (**self).allocated_bytes()
    }
    fn stats(&self) -> OpStatsSnapshot {
        (**self).stats()
    }
    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        (**self).granted_size_of_live(offset)
    }
    fn granted_size_for(&self, size: usize) -> Option<usize> {
        (**self).granted_size_for(size)
    }
    fn grant_alignment_for(&self, size: usize) -> Option<usize> {
        (**self).grant_alignment_for(size)
    }
    fn frag_stats(&self) -> Option<FragStatsSnapshot> {
        (**self).frag_stats()
    }
    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        (**self).cache_stats()
    }
    fn cache_class_capacities(&self) -> Option<Vec<(usize, usize)>> {
        (**self).cache_class_capacities()
    }
    fn drain_cache(&self) {
        (**self).drain_cache()
    }
    fn occupancy(&self) -> Option<OccupancySnapshot> {
        (**self).occupancy()
    }
    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        (**self).free_chunks(min_size)
    }
    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        (**self).scrub_claim(offset, size)
    }
    fn scrub_dealloc(&self, offset: usize) {
        (**self).scrub_dealloc(offset)
    }
    fn trim_empty_pages(&self) -> usize {
        (**self).trim_empty_pages()
    }
}
