//! The 4-level optimized non-blocking buddy system (`4lvl-nb`, §III-D).
//!
//! Executing an atomic RMW instruction forces the core to take exclusive
//! ownership of the target cache line, so the number of CAS operations on the
//! critical path directly bounds scalability.  In the 1-level design an
//! allocation/release at depth `d` issues roughly `d - max_level` CAS
//! operations (one per traversed tree level).  The optimization packs a
//! *bunch* of four consecutive tree levels into a single 64-bit word so that
//! one CAS updates four levels at a time, cutting the RMW count by ~4×.
//!
//! ## Bunch representation
//!
//! A bunch rooted at a node of level `4k` covers levels `4k ..= min(4k+3, depth)`
//! — up to 15 nodes, of which only the (at most) 8 nodes of the *lowest*
//! covered level are physically stored, 5 status bits each (40 bits total) in
//! one `AtomicU64` (Figure 7).  The state of the internal in-bunch nodes is
//! *derived* from the stored ones (Figure 6):
//!
//! * a node's left/right **partial occupancy** is the OR of the occupancy
//!   bits of the stored nodes below that branch;
//! * a node's **full occupancy** is the AND of the `OCC` bits of the stored
//!   nodes below it;
//! * its **coalescing** bits are the OR of the coalescing bits below the
//!   respective branch.
//!
//! Consequently:
//!
//! * occupying a node that is *not* at its bunch's stored level writes `BUSY`
//!   into every stored node underneath it — still a single CAS;
//! * climbing past a bunch touches exactly one stored node of the parent
//!   bunch (the parent of the current bunch's root), i.e. one CAS every four
//!   levels;
//! * nothing is ever written for in-bunch internal nodes.
//!
//! The allocation/release logic is otherwise identical to
//! [`crate::onelvl::NbbsOneLevel`] (Algorithms 1–4), with the per-node CAS
//! replaced by a CAS over the containing 64-bit bunch word.
//!
//! ## Memory ordering
//!
//! Why is `AcqRel` on every CAS (with `Acquire` loads) sufficient?  The
//! argument is written against the step semantics of the `nbbs-model`
//! checker — one shared-memory access commits per scheduler step, i.e.
//! sequential consistency — and then closes the gap between
//! release/acquire and SC explicitly:
//!
//! 1. **Every status mutation is an RMW; there are no blind stores to
//!    bunch words.**  All writes in `try_alloc_node`, `free_node` and
//!    `unmark` are `compare_exchange(AcqRel, Acquire)` loops.  RMWs on one
//!    word are totally ordered (each reads the latest value in the word's
//!    modification order), so per word the metadata is a linearizable
//!    state machine: a CAS can never act on a stale snapshot — staleness
//!    makes it fail and retry.  The only plain store is the `index[]`
//!    publication after a successful allocation; it is `Release`, and it
//!    is read (`Acquire`) only on the free path of the same chunk, whose
//!    offset must have been handed from allocator to releaser through
//!    some external happens-before edge anyway (the same contract
//!    `dealloc` always had).
//!
//! 2. **Cross-word ordering comes from release/acquire transitivity along
//!    each climb.**  A release executes: coalescing-bit CAS on the parent
//!    boundary slot (phase 1), clear CAS on the chunk's own word (phase
//!    2), then the `unmark` climb (phase 3).  Each is sequenced after the
//!    previous on the releasing thread and each is `AcqRel`: any thread
//!    whose acquire operation observes a later write of that chain
//!    synchronizes-with it and therefore also observes every earlier
//!    write.  Concretely, an allocation that sees phase 2's cleared word
//!    (its `try_alloc_node` CAS succeeds from the all-clear state) is
//!    guaranteed to see phase 1's coalescing bit when it climbs to the
//!    parent — which is exactly what `clean_coal` relies on to revoke the
//!    in-flight release.
//!
//! 3. **Decision loads are validated by a gating CAS, so
//!    RA-weaker-than-SC behaviours cannot commit a wrong transition.**
//!    Release/acquire admits store-buffering-like outcomes that SC
//!    forbids, but only for *plain* loads racing writes on different
//!    words.  The algorithm has two such decision loads: the level scan's
//!    is-free check (`node_is_free`) and the release climb's
//!    `subtree_slots_busy`.  Both are advisory: the scan's verdict is
//!    re-validated atomically by the `try_alloc_node` CAS (which requires
//!    the *entire* slot range clear at commit time), and
//!    `subtree_slots_busy`'s verdict is gated by the `is_coal` check
//!    inside `unmark`'s CAS loop on the parent word — if any interfering
//!    allocation got there first, its `clean_coal` makes the gate fail
//!    and the climb aborts.  A stale read therefore causes at worst a
//!    conservative refusal (the branch bit is cleared by the *last*
//!    releaser instead, whose gate CAS serializes against the
//!    interference), never a lost or duplicated chunk.
//!
//! The gate in (3) is load-bearing and subtle: the coalescing bit on a
//! bunch boundary is **branch-granular, not per-releaser** — two releases
//! climbing out of the same bunch share it, so a releaser can pass the
//! gate on a sibling's coalescing bit.  That is sound *only* because
//! `subtree_slots_busy` inspects the whole bunch, including the slots the
//! releaser itself freed in phase 2: an earlier version excluded the
//! freed node's own slot range and was blind to its re-allocation — the
//! `nbbs-model` checker found a 3-thread schedule (release/release of two
//! buddies racing an allocation that reuses the first-freed leaf) where
//! the first releaser consumed the second's coalescing bit and cleared
//! the ancestor's branch-occupancy bit under a live chunk, leaving the
//! chunk's ancestors readable as free (overlap hazard; quiescent echo: a
//! stray `OCC|COAL` boundary bit — the ROADMAP's residual-race symptom).
//!
//! Under `--cfg nbbs_model` the atomics below become shadow atomics and
//! the `nbbs-model` crate enumerates every SC interleaving of these
//! accesses for 2–3 threads over the minimal non-degenerate geometry (two
//! leaves sharing a bunch word, one boundary into the root word):
//! release/release and release/allocate are exhaustively clean (176 / 58
//! sleep-set-distinct schedules; pruning cross-validated by a 36,300-run
//! unpruned sweep), and release/release/allocate is clean exhaustively
//! (195,600 sleep-set-distinct schedules, one-time run) and under a sound
//! preemption-bound-3 search (19,864 schedules, no pruning) on every push
//! — while the same bounded search run against either historical bug (the
//! PR-1 early-break or the `unmark` exclusion) produces a replayable
//! witness within the first ~1,300 schedules.

// Under `--cfg nbbs_model` every atomic the algorithm touches becomes a
// *shadow* atomic (same API, every access a scheduler yield point) so the
// `nbbs-model` crate can enumerate interleavings of the CAS climbs below.
// The default build aliases the very same names to `std::sync::atomic`:
// type aliases only, zero cost in production.
#[cfg(nbbs_model)]
use nbbs_sync::shadow::{AtomicU32, AtomicU64, AtomicUsize};
use std::sync::atomic::Ordering;
#[cfg(not(nbbs_model))]
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};

use crate::config::{BuddyConfig, ScanPolicy};
use crate::error::FreeError;
use crate::geometry::Geometry;
use crate::stats::{OpStats, OpStatsSnapshot};
use crate::status::{
    clean_coal, is_coal, is_coal_buddy, is_occ_buddy, mark, unmark, BUSY, COAL_LEFT, COAL_RIGHT,
    OCC, OCC_LEFT, OCC_RIGHT, STATUS_BITS, STATUS_MASK,
};
use crate::traits::{BuddyBackend, TreeInspect};

/// Number of tree levels folded into one bunch word.
pub const BUNCH_LEVELS: u32 = 4;

/// Per-tree-level constants used by [`BunchGeometry::locate`].
///
/// `locate` sits on the allocator's hottest path (one call per candidate node
/// inspected by the level scan), so everything derivable from the level alone
/// is precomputed once at construction time.
#[derive(Debug, Clone, Copy)]
struct LevelParams {
    /// In-bunch depth of the level (`level % 4`): shift from a node to its
    /// bunch root.
    to_root: u32,
    /// Shift from a node to its first stored descendant (`floor - level`).
    span: u32,
    /// Shift from the bunch root to the stored level (`floor - root_level`).
    root_to_floor: u32,
    /// `word_offset[root_level / 4] - 2^root_level`, so that the word index
    /// of a bunch root `r` is simply `word_base + r`.
    word_base: isize,
}

/// Geometry extension mapping tree nodes to bunch words and slots.
///
/// A *slot* is the position (0..8) of a stored node inside its bunch word;
/// slot `j` occupies bits `[5j, 5j+5)` of the word.
#[derive(Debug, Clone)]
pub struct BunchGeometry {
    geo: Geometry,
    /// `word_offset[k]` = index of the first word of bunches rooted at level `4k`.
    word_offset: Vec<usize>,
    /// Total number of bunch words.
    word_count: usize,
    /// Precomputed per-level constants, indexed by tree level.
    levels: Vec<LevelParams>,
}

impl BunchGeometry {
    /// Builds the bunch layout for the given tree geometry.
    pub fn new(geo: Geometry) -> Self {
        let mut word_offset = Vec::new();
        let mut acc = 0usize;
        let mut root_level = 0u32;
        while root_level <= geo.depth() {
            word_offset.push(acc);
            acc += 1usize << root_level;
            root_level += BUNCH_LEVELS;
        }
        let levels = (0..=geo.depth())
            .map(|level| {
                let to_root = level % BUNCH_LEVELS;
                let root_level = level - to_root;
                let floor = (root_level + BUNCH_LEVELS - 1).min(geo.depth());
                LevelParams {
                    to_root,
                    span: floor - level,
                    root_to_floor: floor - root_level,
                    word_base: word_offset[(root_level / BUNCH_LEVELS) as usize] as isize
                        - (1isize << root_level),
                }
            })
            .collect();
        BunchGeometry {
            geo,
            word_offset,
            word_count: acc,
            levels,
        }
    }

    /// The underlying tree geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Total number of 64-bit bunch words required.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.word_count
    }

    /// Level of the root of the bunch containing a node at `level`.
    #[inline]
    pub fn bunch_root_level(&self, level: u32) -> u32 {
        level - (level % BUNCH_LEVELS)
    }

    /// Root node of the bunch containing node `n`.
    #[inline]
    pub fn bunch_root(&self, n: usize) -> usize {
        let level = self.geo.level_of(n);
        n >> (level % BUNCH_LEVELS)
    }

    /// Level whose nodes are physically stored for the bunch rooted at
    /// `root_level` (the bunch's lowest covered level).
    #[inline]
    pub fn floor_level(&self, root_level: u32) -> u32 {
        (root_level + BUNCH_LEVELS - 1).min(self.geo.depth())
    }

    /// Index of the bunch word for the bunch rooted at node `root`.
    #[inline]
    pub fn word_of_root(&self, root: usize) -> usize {
        let root_level = self.geo.level_of(root);
        debug_assert_eq!(
            root_level % BUNCH_LEVELS,
            0,
            "node {root} is not a bunch root"
        );
        self.word_offset[(root_level / BUNCH_LEVELS) as usize] + (root - (1usize << root_level))
    }

    /// Location of node `n` inside its bunch: `(word index, first slot,
    /// number of slots)`.
    ///
    /// For a node at its bunch's stored level the width is 1; for a node
    /// higher in the bunch the range covers all stored nodes underneath it.
    #[inline]
    pub fn locate(&self, n: usize) -> (usize, u32, u32) {
        let level = self.geo.level_of(n);
        let p = self.levels[level as usize];
        let root = n >> p.to_root;
        let slot = ((n << p.span) - (root << p.root_to_floor)) as u32;
        let word = (p.word_base + root as isize) as usize;
        debug_assert_eq!(word, self.word_of_root(root));
        (word, slot, 1u32 << p.span)
    }
}

/// Extracts the 5-bit status of `slot` from a bunch word.
#[inline(always)]
fn get_slot(word: u64, slot: u32) -> u8 {
    ((word >> (slot * STATUS_BITS)) & STATUS_MASK as u64) as u8
}

/// Returns `word` with `slot` replaced by `status`.
#[inline(always)]
fn set_slot(word: u64, slot: u32, status: u8) -> u64 {
    let shift = slot * STATUS_BITS;
    (word & !((STATUS_MASK as u64) << shift)) | ((status as u64) << shift)
}

/// Are all `width` slots starting at `slot` completely clear (all five bits)?
#[inline(always)]
fn slots_all_clear(word: u64, slot: u32, width: u32) -> bool {
    let mask = range_mask(slot, width);
    word & mask == 0
}

/// Do any of the `width` slots starting at `slot` carry a BUSY bit?
#[inline(always)]
fn slots_any_busy(word: u64, slot: u32, width: u32) -> bool {
    let busy_mask = spread(BUSY, slot, width);
    word & busy_mask != 0
}

/// Mask covering all bits of `width` slots starting at `slot`.
#[inline(always)]
fn range_mask(slot: u32, width: u32) -> u64 {
    spread(STATUS_MASK, slot, width)
}

/// Replicates `pattern` (a 5-bit value) across `width` slots starting at `slot`.
#[inline(always)]
fn spread(pattern: u8, slot: u32, width: u32) -> u64 {
    // REP[w] has a 1 in bit 5*i for every i < w, so multiplying by the
    // pattern replicates it across the w slots without a loop (this helper
    // runs once per candidate node inspected by the level scan).
    const REP: [u64; 9] = [
        0,
        0x0000000001,
        0x0000000021,
        0x0000000421,
        0x0000008421,
        0x0000108421,
        0x0002108421,
        0x0042108421,
        0x0842108421,
    ];
    (pattern as u64 * REP[width as usize]) << (slot * STATUS_BITS)
}

use crate::onelvl::scan_cursor;

/// The 4-level optimized non-blocking buddy allocator.
pub struct NbbsFourLevel {
    bgeo: BunchGeometry,
    scan_policy: ScanPolicy,
    /// One 64-bit word per bunch; bits `[5j, 5j+5)` hold the status of the
    /// bunch's `j`-th stored node.
    words: Box<[AtomicU64]>,
    /// Same role as the 1-level `index[]`.
    index: Box<[AtomicU32]>,
    allocated: AtomicUsize,
    stats: OpStats,
}

impl NbbsFourLevel {
    /// Creates an allocator for the given configuration.
    pub fn new(config: BuddyConfig) -> Self {
        let geo = Geometry::new(&config);
        let bgeo = BunchGeometry::new(geo);
        let words = (0..bgeo.word_count()).map(|_| AtomicU64::new(0)).collect();
        let index = (0..geo.unit_count()).map(|_| AtomicU32::new(0)).collect();
        NbbsFourLevel {
            bgeo,
            scan_policy: config.scan_policy(),
            words,
            index,
            allocated: AtomicUsize::new(0),
            stats: OpStats::new(),
        }
    }

    /// The allocator's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        self.bgeo.geometry()
    }

    /// The bunch layout (exposed for diagnostics and white-box tests).
    #[inline]
    pub fn bunch_geometry(&self) -> &BunchGeometry {
        &self.bgeo
    }

    /// Allocates at least `size` bytes, returning the chunk's byte offset.
    pub fn alloc(&self, size: usize) -> Option<usize> {
        let level = self.geometry().target_level(size)?;
        self.alloc_at_level(level)
    }

    /// Allocates one chunk of the order associated with `level`
    /// (`max_level <= level <= depth`).
    pub fn alloc_at_level(&self, level: u32) -> Option<usize> {
        let geo = *self.geometry();
        debug_assert!(level >= geo.max_level() && level <= geo.depth());
        let first = geo.first_node_of_level(level);
        let count = geo.nodes_at_level(level);
        let start = match self.scan_policy {
            ScanPolicy::FirstFit => first,
            ScanPolicy::Scattered => first + (scan_cursor::get() % count),
        };
        if let Some(offset) = self.scan_range(level, start, first + count) {
            return Some(offset);
        }
        if start > first {
            if let Some(offset) = self.scan_range(level, first, start) {
                return Some(offset);
            }
        }
        self.stats.record_failed_alloc(1);
        None
    }

    /// Claims the *specific* block `[offset, offset + size)` — the targeted
    /// form of [`NbbsFourLevel::alloc_at_level`] the decommit scrubber uses
    /// to take ownership of a block the occupancy walk reported free.  See
    /// the 1-level twin for the contract; the claim rides the same
    /// bunch-word CAS protocol as allocation, so a stale target fails
    /// rather than racing a live chunk.
    pub fn claim_block(&self, offset: usize, size: usize) -> bool {
        let geo = *self.geometry();
        let Some(level) = geo.target_level(size) else {
            return false;
        };
        if geo.size_of_level(level) != size
            || !offset.is_multiple_of(size)
            || offset + size > geo.total_memory()
        {
            return false;
        }
        let n = geo.node_at(level, offset / size);
        if self.try_alloc_node(n).is_err() {
            return false;
        }
        self.index[geo.unit_of_offset(offset)].store(n as u32, Ordering::Release);
        self.allocated.fetch_add(size, Ordering::Relaxed);
        self.stats.record_alloc(1);
        true
    }

    fn scan_range(&self, level: u32, from: usize, to: usize) -> Option<usize> {
        let geo = *self.geometry();
        let mut i = from;
        while i < to {
            if self.node_is_free(i) {
                match self.try_alloc_node(i) {
                    Ok(()) => {
                        let offset = geo.offset_of(i);
                        self.index[geo.unit_of_offset(offset)].store(i as u32, Ordering::Release);
                        let granted = geo.size_of_level(level);
                        self.allocated.fetch_add(granted, Ordering::Relaxed);
                        self.stats.record_alloc(1);
                        if self.scan_policy == ScanPolicy::Scattered {
                            scan_cursor::advance_past(i);
                        }
                        return Some(offset);
                    }
                    Err(failed_at) => {
                        self.stats.record_skip(1);
                        let d = 1usize << (level - geo.level_of(failed_at));
                        i = (failed_at + 1) * d;
                        continue;
                    }
                }
            } else {
                self.stats.record_skip(1);
            }
            i += 1;
        }
        None
    }

    /// Is node `n` free according to the derived bunch state?
    fn node_is_free(&self, n: usize) -> bool {
        let (w, slot, width) = self.bgeo.locate(n);
        let word = self.words[w].load(Ordering::Acquire);
        !slots_any_busy(word, slot, width)
    }

    /// Do the stored slots under `subtree_root` contain any busy bit?
    ///
    /// This is the bunch-granular aggregate of the per-level buddy checks the
    /// 1-level algorithm performs while climbing inside the four levels
    /// folded into one word: a release may propagate past `subtree_root` only
    /// if nothing inside its bunch is occupied.
    ///
    /// Deliberately **no exclusion** of the releasing thread's own node: by
    /// the time `unmark` runs, phase 2 has already cleared that node's
    /// slots, so a busy bit there means the node was *re-allocated* by a
    /// concurrent `try_alloc_node` — exactly the case in which the climb
    /// must stop.  An earlier version excluded the freed node's slot range
    /// and was blind to that reuse: with two releases sharing the
    /// branch-granular coalescing bit on the bunch boundary, the first
    /// releaser could consume the second's coalescing bit and clear the
    /// ancestor's branch-occupancy bit while the re-allocated chunk was
    /// live — leaving a live chunk under ancestors that read free (found
    /// by the `nbbs-model` checker's free/free/alloc config; see the
    /// memory-ordering argument in the module docs).
    fn subtree_slots_busy(&self, subtree_root: usize) -> bool {
        !self.node_is_free(subtree_root)
    }

    /// `TRYALLOC`, bunch edition: occupy node `n` (writing BUSY into every
    /// stored node below it, one CAS) and propagate partial occupancy across
    /// the ancestor bunches up to `max_level`.
    fn try_alloc_node(&self, n: usize) -> Result<(), usize> {
        let geo = *self.geometry();
        let (w, slot, width) = self.bgeo.locate(n);
        let occupied_pattern = spread(BUSY, slot, width);
        loop {
            let cur = self.words[w].load(Ordering::Acquire);
            if !slots_all_clear(cur, slot, width) {
                // The node (or one of the stored nodes it covers) is busy or
                // in a transient coalescing state: conflict on `n` itself.
                return Err(n);
            }
            let new = cur | occupied_pattern;
            self.stats.record_cas(1);
            if self.words[w]
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
            self.stats.record_cas_failure(1);
            self.stats
                .record_cas_failure_at(geo.level_of(n) as usize, 1);
            // The CAS may have failed because an unrelated slot of the same
            // word changed; re-evaluate from the top.
        }

        // Climb across bunch boundaries: one stored node (one CAS) per
        // ancestor bunch, exactly the factor-4 reduction of §III-D.
        let max_level = geo.max_level();
        let mut child_root = self.bgeo.bunch_root(n);
        while child_root > 1 && geo.level_of(child_root) > max_level {
            let parent_node = child_root >> 1;
            let (pw, pslot, pwidth) = self.bgeo.locate(parent_node);
            debug_assert_eq!(pwidth, 1, "parent of a bunch root is a stored node");
            loop {
                let cur = self.words[pw].load(Ordering::Acquire);
                let status = get_slot(cur, pslot);
                if status & OCC != 0 {
                    // A concurrent allocation owns this whole chunk.
                    self.free_node(n, geo.level_of(child_root));
                    return Err(parent_node);
                }
                let new_status = mark(clean_coal(status, child_root), child_root);
                let new = set_slot(cur, pslot, new_status);
                self.stats.record_cas(1);
                if self.words[pw]
                    .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(geo.level_of(parent_node) as usize, 1);
            }
            child_root = self.bgeo.bunch_root(parent_node);
        }
        Ok(())
    }

    /// Releases the chunk starting at byte `offset` (the paper's `NBFREE`).
    pub fn dealloc(&self, offset: usize) {
        let geo = *self.geometry();
        let unit = geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        debug_assert!(n >= 1, "dealloc of never-allocated offset {offset}");
        let granted = geo.size_of(n);
        self.free_node(n, geo.max_level());
        self.allocated.fetch_sub(granted, Ordering::Relaxed);
        self.stats.record_free(1);
    }

    /// `FREENODE`, bunch edition.
    fn free_node(&self, n: usize, upper_level: u32) {
        let geo = *self.geometry();

        // Phase 1: mark the coalescing bit of the traversed branch on the
        // stored path node of every ancestor bunch, stopping early only when
        // the buddy branch at the stored path node is occupied and not itself
        // coalescing (the 1-level algorithm's break condition).
        //
        // Unlike `unmark`, this climb must NOT break early when other slots
        // of the bunch being left are busy: those slots may belong to a
        // concurrent release that has not yet cleared them (phase 2 of that
        // release is still in flight), and in-bunch slots carry no "being
        // freed" marker the way stored parent slots carry coalescing bits.
        // If both racing releases broke here, neither would ever set the
        // coalescing bit on the shared ancestor boundary, and the last
        // `unmark` to find the bunch empty would refuse to clear the
        // ancestor's branch-occupancy bit (its `is_coal` gate fails) —
        // permanently stranding capacity above the bunch.  The coalescing
        // bits written by an over-long climb are cheap and self-healing: a
        // racing allocation clears them with `clean_coal`, and the final
        // release's `unmark` clears them together with the occupancy bits.
        let mut child_root = self.bgeo.bunch_root(n);
        while child_root > 1 && geo.level_of(child_root) > upper_level {
            let parent_node = child_root >> 1;
            let (pw, pslot, _) = self.bgeo.locate(parent_node);
            let coal_bit = COAL_LEFT >> ((child_root & 1) as u8);
            let old_status;
            loop {
                let cur = self.words[pw].load(Ordering::Acquire);
                let status = get_slot(cur, pslot);
                let new = set_slot(cur, pslot, status | coal_bit);
                self.stats.record_cas(1);
                if self.words[pw]
                    .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    old_status = status;
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(geo.level_of(parent_node) as usize, 1);
            }
            if is_occ_buddy(old_status, child_root) && !is_coal_buddy(old_status, child_root) {
                break;
            }
            child_root = self.bgeo.bunch_root(parent_node);
        }

        // Phase 2: clear every stored node covered by `n` (single CAS loop on
        // the bunch word; other slots of the word must be preserved).
        let (w, slot, width) = self.bgeo.locate(n);
        let mask = range_mask(slot, width);
        loop {
            let cur = self.words[w].load(Ordering::Acquire);
            let new = cur & !mask;
            if cur == new {
                break;
            }
            self.stats.record_cas(1);
            if self.words[w]
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
            self.stats.record_cas_failure(1);
            self.stats
                .record_cas_failure_at(geo.level_of(n) as usize, 1);
        }

        // Phase 3: propagate the release across the ancestor bunches.
        if self.bgeo.bunch_root(n) > 1 && geo.level_of(self.bgeo.bunch_root(n)) > upper_level {
            self.unmark(n, upper_level);
        }
    }

    /// `UNMARK`, bunch edition.
    ///
    /// The release may clear a stored ancestor's branch-occupancy bit only if
    /// nothing remains allocated inside the bunch it is climbing out of
    /// ([`Self::subtree_slots_busy`] aggregates the per-level buddy checks
    /// of the 1-level algorithm; the releasing thread's own slots were
    /// cleared by phase 2, so a busy bit anywhere — including where the
    /// freed chunk used to live — denotes a live allocation and stops the
    /// climb) and the coalescing bit set by [`Self::free_node`] is still in
    /// place (otherwise a concurrent allocation has already reused the
    /// branch).
    fn unmark(&self, n: usize, upper_level: u32) {
        let geo = *self.geometry();
        let mut child_root = self.bgeo.bunch_root(n);
        while child_root > 1 && geo.level_of(child_root) > upper_level {
            if self.subtree_slots_busy(child_root) {
                return;
            }
            let parent_node = child_root >> 1;
            let (pw, pslot, _) = self.bgeo.locate(parent_node);
            let new_status;
            loop {
                let cur = self.words[pw].load(Ordering::Acquire);
                let status = get_slot(cur, pslot);
                if !is_coal(status, child_root) {
                    // Someone reused (or already cleaned) this branch.
                    return;
                }
                let candidate = unmark(status, child_root);
                let new = set_slot(cur, pslot, candidate);
                self.stats.record_cas(1);
                if self.words[pw]
                    .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    new_status = candidate;
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(geo.level_of(parent_node) as usize, 1);
            }
            if is_occ_buddy(new_status, child_root) {
                return;
            }
            child_root = self.bgeo.bunch_root(parent_node);
        }
    }

    /// Bytes currently handed out.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Derived 5-bit status of node `n` (Figure 6), for tests/verification.
    pub fn node_status(&self, n: usize) -> u8 {
        let geo = *self.geometry();
        let (w, slot, width) = self.bgeo.locate(n);
        let word = self.words[w].load(Ordering::Acquire);
        if width == 1 {
            return get_slot(word, slot);
        }
        // Derive from the stored nodes under each branch.
        let half = width / 2;
        let mut left_busy = false;
        let mut left_coal = false;
        let mut right_busy = false;
        let mut right_coal = false;
        let mut all_occ = true;
        for i in 0..width {
            let s = get_slot(word, slot + i);
            let busy = s & BUSY != 0;
            let coal = s & (COAL_LEFT | COAL_RIGHT) != 0;
            if i < half {
                left_busy |= busy;
                left_coal |= coal;
            } else {
                right_busy |= busy;
                right_coal |= coal;
            }
            all_occ &= s & OCC != 0;
        }
        // A node below the leaf level of the *tree* can only be fully
        // occupied when it was allocated directly, in which case every stored
        // node carries OCC; partial occupancy comes from either branch.
        let mut status = 0u8;
        if left_busy {
            status |= OCC_LEFT;
        }
        if right_busy {
            status |= OCC_RIGHT;
        }
        if left_coal {
            status |= COAL_LEFT;
        }
        if right_coal {
            status |= COAL_RIGHT;
        }
        if all_occ {
            status |= OCC;
        }
        let _ = geo;
        status
    }

    /// Operation statistics (zeros unless the `op-stats` feature is on).
    pub fn op_stats(&self) -> OpStatsSnapshot {
        self.stats.snapshot()
    }

    /// Labels for every shadow-atomic cell of this instance, as
    /// `(address, label)` pairs — used by the `nbbs-model` crate to print
    /// schedule witnesses in terms of bunch words (`word[w]@Lk`), `index[]`
    /// entries and the allocated-bytes counter instead of raw addresses.
    ///
    /// Only exists under `--cfg nbbs_model`; the addresses are those the
    /// shadow scheduler observes at yield points.
    #[cfg(nbbs_model)]
    pub fn model_addr_labels(&self) -> Vec<(usize, String)> {
        let mut labels = vec![(self.allocated.model_addr(), "allocated".to_string())];
        for (w, word) in self.words.iter().enumerate() {
            // Recover the root level of the bunch this word belongs to so
            // the label shows which tree levels a CAS on it covers.
            let bucket = self
                .bgeo
                .word_offset
                .iter()
                .rposition(|&off| off <= w)
                .unwrap_or(0);
            let root_level = bucket as u32 * BUNCH_LEVELS;
            labels.push((
                word.model_addr(),
                format!(
                    "word[{w}]@L{root_level}..{}",
                    self.bgeo.floor_level(root_level)
                ),
            ));
        }
        for (u, cell) in self.index.iter().enumerate() {
            labels.push((cell.model_addr(), format!("index[{u}]")));
        }
        labels
    }
}

impl BuddyBackend for NbbsFourLevel {
    fn name(&self) -> &'static str {
        "4lvl-nb"
    }

    fn geometry(&self) -> &Geometry {
        self.bgeo.geometry()
    }

    fn alloc(&self, size: usize) -> Option<usize> {
        NbbsFourLevel::alloc(self, size)
    }

    fn dealloc(&self, offset: usize) {
        NbbsFourLevel::dealloc(self, offset)
    }

    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        let geo = *self.geometry();
        if offset >= geo.total_memory() {
            return Err(FreeError::OutOfRange {
                offset,
                total_memory: geo.total_memory(),
            });
        }
        if !offset.is_multiple_of(geo.min_size()) {
            return Err(FreeError::Misaligned {
                offset,
                min_size: geo.min_size(),
            });
        }
        let unit = geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        if n == 0 || self.node_status(n) & OCC == 0 {
            return Err(FreeError::NotAllocated { offset });
        }
        NbbsFourLevel::dealloc(self, offset);
        Ok(())
    }

    fn allocated_bytes(&self) -> usize {
        NbbsFourLevel::allocated_bytes(self)
    }

    fn stats(&self) -> OpStatsSnapshot {
        self.stats.snapshot()
    }

    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        let geo = *self.geometry();
        if offset >= geo.total_memory() || !offset.is_multiple_of(geo.min_size()) {
            return None;
        }
        let unit = geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        if n == 0 || geo.offset_of(n) != offset || self.node_status(n) & OCC == 0 {
            return None;
        }
        Some(geo.size_of(n))
    }

    fn occupancy(&self) -> Option<crate::occupancy::OccupancySnapshot> {
        Some(crate::occupancy::occupancy_of(self))
    }

    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        Some(crate::occupancy::free_chunks_of(self, min_size))
    }

    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        self.claim_block(offset, size)
    }
}

impl TreeInspect for NbbsFourLevel {
    fn inspect_geometry(&self) -> &Geometry {
        self.bgeo.geometry()
    }

    fn node_status(&self, n: usize) -> u8 {
        NbbsFourLevel::node_status(self, n)
    }

    fn recorded_node_of_unit(&self, unit: usize) -> Option<usize> {
        let v = self.index[unit].load(Ordering::Acquire) as usize;
        if v == 0 {
            None
        } else {
            Some(v)
        }
    }
}

impl std::fmt::Debug for NbbsFourLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NbbsFourLevel")
            .field("total_memory", &self.geometry().total_memory())
            .field("min_size", &self.geometry().min_size())
            .field("max_size", &self.geometry().max_size())
            .field("bunch_words", &self.bgeo.word_count())
            .field("allocated_bytes", &self.allocated_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn buddy(total: usize, min: usize, max: usize) -> NbbsFourLevel {
        NbbsFourLevel::new(BuddyConfig::new(total, min, max).unwrap())
    }

    #[test]
    fn claim_block_targets_specific_free_blocks() {
        let b = buddy(1 << 16, 64, 1 << 12);
        assert!(b.claim_block(2 << 12, 1 << 12));
        assert!(!b.claim_block(2 << 12, 1 << 12), "double claim refused");
        assert!(!b.claim_block(2 << 12, 64), "overlap refused");
        assert!(b.claim_block(0, 64), "leaf-sized claim works");
        b.dealloc(0);
        b.dealloc(2 << 12);
        let held = b.alloc(4096).unwrap();
        let snap = BuddyBackend::occupancy(&b).unwrap();
        for &(off, size) in &snap.free_chunks {
            assert!(b.scrub_claim(off, size), "chunk ({off}, {size})");
        }
        assert_eq!(b.allocated_bytes(), 1 << 16);
        for &(off, _) in &snap.free_chunks {
            b.dealloc(off);
        }
        b.dealloc(held);
        assert_eq!(b.allocated_bytes(), 0);
    }

    fn buddy_first_fit(total: usize, min: usize, max: usize) -> NbbsFourLevel {
        NbbsFourLevel::new(
            BuddyConfig::new(total, min, max)
                .unwrap()
                .with_scan_policy(ScanPolicy::FirstFit),
        )
    }

    /// Asserts that every bunch word of the allocator is zero.
    fn assert_clean(b: &NbbsFourLevel) {
        for (i, w) in b.words.iter().enumerate() {
            assert_eq!(w.load(Ordering::Acquire), 0, "bunch word {i} not clean");
        }
    }

    mod slot_ops {
        use super::*;

        #[test]
        fn get_set_round_trip() {
            let mut word = 0u64;
            for slot in 0..8 {
                word = set_slot(word, slot, (slot as u8 + 1) & STATUS_MASK);
            }
            for slot in 0..8 {
                assert_eq!(get_slot(word, slot), (slot as u8 + 1) & STATUS_MASK);
            }
            // Overwrite one slot; the others are untouched.
            word = set_slot(word, 3, 0);
            assert_eq!(get_slot(word, 3), 0);
            assert_eq!(get_slot(word, 2), 3);
            assert_eq!(get_slot(word, 4), 5);
        }

        #[test]
        fn clear_and_busy_predicates() {
            let word = set_slot(set_slot(0, 2, BUSY), 5, COAL_LEFT);
            assert!(!slots_all_clear(word, 2, 1));
            assert!(!slots_all_clear(word, 5, 1)); // coal bit counts as not clear
            assert!(slots_all_clear(word, 0, 2));
            assert!(slots_any_busy(word, 0, 8));
            assert!(slots_any_busy(word, 2, 1));
            assert!(!slots_any_busy(word, 5, 1)); // coal alone is not busy
            assert!(!slots_any_busy(word, 0, 2));
        }

        #[test]
        fn spread_replicates_pattern() {
            let v = spread(BUSY, 1, 3);
            assert_eq!(get_slot(v, 0), 0);
            assert_eq!(get_slot(v, 1), BUSY);
            assert_eq!(get_slot(v, 2), BUSY);
            assert_eq!(get_slot(v, 3), BUSY);
            assert_eq!(get_slot(v, 4), 0);
        }

        #[test]
        fn forty_bits_fit_in_a_word() {
            let v = spread(STATUS_MASK, 0, 8);
            assert_eq!(v, (1u64 << 40) - 1);
        }
    }

    mod bunch_geometry {
        use super::*;

        fn bg(total: usize, min: usize) -> BunchGeometry {
            BunchGeometry::new(Geometry::new(
                &BuddyConfig::whole_region(total, min).unwrap(),
            ))
        }

        #[test]
        fn word_count_sums_bunch_roots() {
            // depth 7: bunch roots at level 0 (1 root) and level 4 (16 roots).
            let g = bg(128, 1);
            assert_eq!(g.geometry().depth(), 7);
            assert_eq!(g.word_count(), 1 + 16);

            // depth 3: a single bunch.
            let g = bg(8, 1);
            assert_eq!(g.word_count(), 1);

            // depth 9: roots at levels 0, 4, 8.
            let g = bg(512, 1);
            assert_eq!(g.word_count(), 1 + 16 + 256);
        }

        #[test]
        fn floor_level_clamps_to_depth() {
            let g = bg(128, 1); // depth 7
            assert_eq!(g.floor_level(0), 3);
            assert_eq!(g.floor_level(4), 7);
            let g = bg(64, 1); // depth 6
            assert_eq!(g.floor_level(4), 6);
            let g = bg(4, 1); // depth 2
            assert_eq!(g.floor_level(0), 2);
        }

        #[test]
        fn locate_root_bunch_nodes() {
            let g = bg(256, 1); // depth 8
                                // Root bunch: root level 0, floor level 3 (8 stored nodes 8..15).
            assert_eq!(g.locate(1), (0, 0, 8));
            assert_eq!(g.locate(2), (0, 0, 4));
            assert_eq!(g.locate(3), (0, 4, 4));
            assert_eq!(g.locate(7), (0, 6, 2));
            assert_eq!(g.locate(8), (0, 0, 1));
            assert_eq!(g.locate(15), (0, 7, 1));
        }

        #[test]
        fn locate_second_bunch_layer() {
            let g = bg(256, 1); // depth 8: bunch roots at levels 0, 4, 8
                                // Bunch rooted at node 16 (level 4): word 1, covers levels 4..=7.
            assert_eq!(g.bunch_root(16), 16);
            assert_eq!(g.locate(16), (1, 0, 8));
            assert_eq!(g.bunch_root(17 << 3), 17);
            assert_eq!(g.locate(17), (2, 0, 8));
            // Node 16's children at level 5.
            assert_eq!(g.locate(32), (1, 0, 4));
            assert_eq!(g.locate(33), (1, 4, 4));
            // Stored nodes of bunch 16 are level-7 nodes 128..=135.
            assert_eq!(g.locate(128), (1, 0, 1));
            assert_eq!(g.locate(135), (1, 7, 1));
            // Level-8 nodes live in their own (partial) bunches below.
            let (w, slot, width) = g.locate(256);
            assert_eq!((slot, width), (0, 1));
            assert!(w > 16);
        }

        #[test]
        fn partial_bottom_bunches() {
            let g = bg(64, 1); // depth 6: bunch roots at 0 and 4; floor(4) = 6
                               // A bunch rooted at level 4 stores the level-6 nodes (4 of them).
            assert_eq!(g.locate(16), (1, 0, 4));
            assert_eq!(g.locate(64), (1, 0, 1));
            assert_eq!(g.locate(67), (1, 3, 1));
            assert_eq!(g.locate(17), (2, 0, 4));
        }

        #[test]
        fn bunch_root_is_ancestor_at_multiple_of_four() {
            let g = bg(1 << 10, 1); // depth 10
            for n in [1usize, 2, 7, 15, 16, 100, 1023, 1024, 2047] {
                let root = g.bunch_root(n);
                let rl = g.geometry().level_of(root);
                assert_eq!(rl % 4, 0);
                assert!(g.geometry().is_ancestor_or_self(root, n));
                assert!(g.geometry().level_of(n) - rl < 4);
            }
        }
    }

    #[test]
    fn single_allocation_and_release() {
        let b = buddy(1024, 64, 1024);
        let off = b.alloc(64).unwrap();
        assert!(off < 1024);
        assert_eq!(off % 64, 0);
        assert_eq!(b.allocated_bytes(), 64);
        b.dealloc(off);
        assert_eq!(b.allocated_bytes(), 0);
        assert_clean(&b);
    }

    #[test]
    fn allocation_grants_power_of_two_at_least_requested() {
        let b = buddy(1 << 16, 8, 1 << 14);
        for req in [1usize, 8, 9, 100, 128, 1000, 1024, 5000] {
            let off = b.alloc(req).unwrap();
            let granted = b.geometry().granted_size(req).unwrap();
            assert!(granted >= req);
            assert_eq!(off % granted, 0);
            b.dealloc(off);
        }
        assert_eq!(b.allocated_bytes(), 0);
        assert_clean(&b);
    }

    #[test]
    fn rejects_oversized_requests() {
        let b = buddy(1 << 16, 8, 1 << 12);
        assert_eq!(b.alloc((1 << 12) + 1), None);
        assert!(b.alloc(1 << 12).is_some());
    }

    #[test]
    fn exhausts_and_recovers() {
        let b = buddy_first_fit(1024, 64, 1024);
        let offs: Vec<usize> = (0..16).map(|_| b.alloc(64).unwrap()).collect();
        assert_eq!(b.alloc(64), None);
        assert_eq!(b.alloc(1024), None);
        for off in offs {
            b.dealloc(off);
        }
        let whole = b.alloc(1024).unwrap();
        assert_eq!(whole, 0);
        b.dealloc(whole);
        assert_clean(&b);
    }

    #[test]
    fn allocating_parent_blocks_children_and_vice_versa() {
        let b = buddy_first_fit(1024, 64, 1024);
        let whole = b.alloc(1024).unwrap();
        assert_eq!(b.alloc(64), None);
        assert_eq!(b.alloc(512), None);
        b.dealloc(whole);

        let leaf = b.alloc(64).unwrap();
        assert_eq!(b.alloc(1024), None);
        let half = b.alloc(512).unwrap();
        assert!(leaf < half || leaf >= half + 512);
        b.dealloc(leaf);
        b.dealloc(half);
        assert_clean(&b);
    }

    #[test]
    fn offsets_never_overlap_while_live() {
        let b = buddy(1 << 14, 8, 1 << 10);
        let sizes = [8usize, 16, 128, 1024, 8, 256, 64, 32, 512, 8];
        let mut live: Vec<(usize, usize)> = Vec::new();
        for &s in &sizes {
            let off = b.alloc(s).unwrap();
            let granted = b.geometry().granted_size(s).unwrap();
            for &(o, g) in &live {
                let disjoint = off + granted <= o || o + g <= off;
                assert!(disjoint, "overlap at {off}");
            }
            live.push((off, granted));
        }
        for (o, _) in live {
            b.dealloc(o);
        }
        assert_clean(&b);
    }

    #[test]
    fn derived_status_reflects_occupancy() {
        let b = buddy_first_fit(1 << 10, 8, 1 << 10); // depth 7, two bunch layers
        let geo = *b.geometry();
        let off = b.alloc(8).unwrap();
        assert_eq!(off, 0);
        let leaf = geo.leaf_of_offset(0);
        // The leaf itself is fully occupied.
        assert_eq!(b.node_status(leaf) & OCC, OCC);
        // Every ancestor between the leaf and the root shows occupancy in its
        // left branch but is not fully occupied.
        let mut node = leaf >> 1;
        loop {
            let st = b.node_status(node);
            assert_ne!(st & (OCC_LEFT | OCC_RIGHT), 0, "node {node}");
            assert_eq!(st & OCC, 0, "node {node} must not be fully occupied");
            if node == 1 {
                break;
            }
            node >>= 1;
        }
        b.dealloc(off);
        assert_clean(&b);
    }

    #[test]
    fn direct_allocation_of_mid_bunch_node_occupies_stored_slots() {
        let b = buddy_first_fit(1 << 10, 8, 1 << 10); // depth 7
                                                      // Allocate half the region: node 2 (level 1), inside the root bunch,
                                                      // covering stored slots 0..4 of word 0.
        let off = b.alloc(1 << 9).unwrap();
        assert_eq!(off, 0);
        let word = b.words[0].load(Ordering::Acquire);
        for slot in 0..4 {
            assert_eq!(get_slot(word, slot), BUSY, "slot {slot}");
        }
        for slot in 4..8 {
            assert_eq!(get_slot(word, slot), 0, "slot {slot}");
        }
        // Derived view: node 2 occupied, node 1 partially occupied (left).
        assert_eq!(b.node_status(2) & OCC, OCC);
        assert_eq!(b.node_status(1) & OCC_LEFT, OCC_LEFT);
        assert_eq!(b.node_status(1) & OCC, 0);
        // The other half is still allocatable.
        let other = b.alloc(1 << 9).unwrap();
        assert_eq!(other, 1 << 9);
        assert_eq!(b.alloc(8), None);
        b.dealloc(off);
        b.dealloc(other);
        assert_clean(&b);
    }

    #[test]
    fn climb_marks_exactly_one_slot_per_ancestor_bunch() {
        let b = buddy_first_fit(1 << 10, 8, 1 << 10); // depth 7: bunches at levels 0..3 and 4..7
        let off = b.alloc(8).unwrap(); // leaf at level 7, node 128
        assert_eq!(off, 0);
        let geo = *b.geometry();
        let leaf = geo.leaf_of_offset(0);
        assert_eq!(leaf, 128);
        // Leaf bunch (rooted at node 16): slot 0 BUSY, nothing else.
        let (w_leaf, s_leaf, _) = b.bgeo.locate(leaf);
        let word = b.words[w_leaf].load(Ordering::Acquire);
        assert_eq!(get_slot(word, s_leaf), BUSY);
        // Parent bunch (root bunch): exactly the stored node 8 carries the
        // partial-occupancy mark for its left child (node 16).
        let root_word = b.words[0].load(Ordering::Acquire);
        assert_eq!(get_slot(root_word, 0), OCC_LEFT);
        for slot in 1..8 {
            assert_eq!(get_slot(root_word, slot), 0, "slot {slot}");
        }
        b.dealloc(off);
        assert_clean(&b);
    }

    #[test]
    fn climb_stops_at_max_level() {
        // total 2^10, max 2^7 → max_level = 3 (inside the root bunch).
        let b = buddy_first_fit(1 << 10, 8, 1 << 7);
        let off = b.alloc(8).unwrap();
        // The root bunch stores levels 0..=3; allocations must mark the
        // level-3 stored ancestor (node 8) because level 3 == max_level.
        let root_word = b.words[0].load(Ordering::Acquire);
        assert_eq!(get_slot(root_word, 0), OCC_LEFT);
        b.dealloc(off);
        assert_clean(&b);
    }

    #[test]
    fn climb_skips_bunches_entirely_above_max_level() {
        // total 2^10 (depth 7), max 2^5 → max_level = 5, inside the second
        // bunch layer; the root bunch (levels 0..3) must never be touched.
        let b = buddy_first_fit(1 << 10, 8, 1 << 5);
        let off = b.alloc(8).unwrap();
        assert_eq!(b.words[0].load(Ordering::Acquire), 0);
        b.dealloc(off);
        assert_clean(&b);
    }

    #[test]
    fn distinct_addresses_for_all_units() {
        let b = buddy(1 << 12, 64, 1 << 12);
        let units = (1 << 12) / 64;
        let mut seen = HashSet::new();
        let mut offs = Vec::new();
        for _ in 0..units {
            let off = b.alloc(64).unwrap();
            assert!(seen.insert(off), "duplicate offset {off}");
            offs.push(off);
        }
        assert_eq!(b.alloc(64), None);
        for off in offs {
            b.dealloc(off);
        }
        assert_clean(&b);
    }

    #[test]
    fn mixed_size_workload_settles_clean() {
        let b = buddy(1 << 16, 8, 1 << 14);
        let mut live = Vec::new();
        for round in 0..200usize {
            let size = 8usize << (round % 9);
            if let Some(off) = b.alloc(size) {
                live.push(off);
            }
            if round % 3 == 0 {
                if let Some(off) = live.pop() {
                    b.dealloc(off);
                }
            }
        }
        for off in live {
            b.dealloc(off);
        }
        assert_eq!(b.allocated_bytes(), 0);
        assert_clean(&b);
    }

    #[test]
    fn matches_one_level_variant_on_identical_sequences() {
        use crate::onelvl::NbbsOneLevel;
        // With the FirstFit policy both variants are deterministic and must
        // produce exactly the same offsets for the same request sequence.
        let cfg = BuddyConfig::new(1 << 14, 8, 1 << 12)
            .unwrap()
            .with_scan_policy(ScanPolicy::FirstFit);
        let one = NbbsOneLevel::new(cfg);
        let four = NbbsFourLevel::new(cfg);
        let mut rng: u64 = 42;
        let mut live: Vec<usize> = Vec::new();
        for _ in 0..2_000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let do_alloc = live.is_empty() || rng & 3 != 0;
            if do_alloc {
                let size = 8usize << ((rng >> 32) % 10);
                let a = one.alloc(size);
                let b = four.alloc(size);
                assert_eq!(a, b, "divergence on alloc({size})");
                if let Some(off) = a {
                    live.push(off);
                }
            } else {
                let pos = (rng >> 16) as usize % live.len();
                let off = live.swap_remove(pos);
                one.dealloc(off);
                four.dealloc(off);
            }
        }
        for off in live {
            one.dealloc(off);
            four.dealloc(off);
        }
        assert_eq!(one.allocated_bytes(), 0);
        assert_eq!(four.allocated_bytes(), 0);
    }

    #[test]
    fn try_dealloc_validates_offsets() {
        let b = buddy(1024, 64, 1024);
        assert!(matches!(
            b.try_dealloc(4096),
            Err(FreeError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.try_dealloc(3),
            Err(FreeError::Misaligned { .. })
        ));
        assert!(matches!(
            b.try_dealloc(128),
            Err(FreeError::NotAllocated { .. })
        ));
        let off = b.alloc(64).unwrap();
        assert!(b.try_dealloc(off).is_ok());
        assert!(matches!(
            b.try_dealloc(off),
            Err(FreeError::NotAllocated { .. })
        ));
    }

    #[test]
    fn concurrent_allocations_never_overlap() {
        const THREADS: usize = 8;
        const ITERS: usize = 2_000;
        let b = Arc::new(buddy(1 << 16, 8, 1 << 10));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut rng: u64 = 0xDEAD_BEEF ^ (t as u64).wrapping_mul(0x9E37);
                    let mut live: Vec<usize> = Vec::new();
                    for _ in 0..ITERS {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let size = 8usize << ((rng >> 60) as usize % 8);
                        if rng & 1 == 0 || live.is_empty() {
                            if let Some(off) = b.alloc(size) {
                                live.push(off);
                            }
                        } else {
                            let off = live.swap_remove((rng >> 32) as usize % live.len());
                            b.dealloc(off);
                        }
                    }
                    for off in live {
                        b.dealloc(off);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.allocated_bytes(), 0);
        assert_clean(&b);
    }

    #[test]
    fn concurrent_same_size_contention_settles_clean() {
        const THREADS: usize = 8;
        let b = Arc::new(buddy(1 << 12, 64, 1 << 12));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..3_000 {
                        if let Some(off) = b.alloc(64) {
                            b.dealloc(off);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.allocated_bytes(), 0);
        assert_clean(&b);
    }

    #[test]
    fn trait_object_usage() {
        let b: Box<dyn BuddyBackend> = Box::new(buddy(1024, 64, 1024));
        assert_eq!(b.name(), "4lvl-nb");
        let off = b.alloc(100).unwrap();
        assert_eq!(b.allocated_bytes(), 128);
        b.dealloc(off);
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn small_trees_fit_in_single_bunch() {
        // depth 2 (< 4 levels): everything lives in one partial bunch.
        let b = buddy_first_fit(256, 64, 256);
        assert_eq!(b.bgeo.word_count(), 1);
        let a = b.alloc(64).unwrap();
        let c = b.alloc(128).unwrap();
        assert_eq!(a, 0);
        assert_eq!(c, 128);
        assert_eq!(b.alloc(128), None);
        let d = b.alloc(64).unwrap();
        assert_eq!(d, 64);
        b.dealloc(a);
        b.dealloc(c);
        b.dealloc(d);
        assert_clean(&b);
        let whole = b.alloc(256).unwrap();
        assert_eq!(whole, 0);
        b.dealloc(whole);
        assert_clean(&b);
    }

    #[cfg(feature = "op-stats")]
    #[test]
    fn four_level_issues_fewer_cas_than_one_level() {
        use crate::onelvl::NbbsOneLevel;
        let cfg = BuddyConfig::new(1 << 20, 8, 1 << 20)
            .unwrap()
            .with_scan_policy(ScanPolicy::FirstFit);
        let one = NbbsOneLevel::new(cfg);
        let four = NbbsFourLevel::new(cfg);
        for _ in 0..100 {
            let a = one.alloc(8).unwrap();
            one.dealloc(a);
            let b = four.alloc(8).unwrap();
            four.dealloc(b);
        }
        let c1 = one.op_stats().cas_ops;
        let c4 = four.op_stats().cas_ops;
        assert!(
            c4 * 2 < c1,
            "expected ≥2x fewer CAS for 4lvl (1lvl={c1}, 4lvl={c4})"
        );
    }
}
