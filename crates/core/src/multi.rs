//! Multi-instance (NUMA-style) deployment of buddy backends.
//!
//! The paper's introduction recalls that large NUMA machines deploy *multiple
//! disjoint instances of the buddy system*, one per NUMA node, to create data
//! separation and reduce contention — and that this technique is orthogonal
//! to (and composable with) making each instance non-blocking.  Figure 12's
//! kernel experiment deliberately binds all threads to *one* instance to
//! expose the contention; [`MultiInstance`] lets the examples and benchmarks
//! explore the opposite end of the spectrum: route each thread to a home
//! instance and fall back to the other instances only when the home one is
//! exhausted (mirroring the kernel's zone fallback order).
//!
//! `MultiInstance` is **deprecated** in favour of the `nbbs-numa` crate's
//! `NodeSet`, which carries the same per-node routing but implements
//! [`BuddyBackend`] itself over a *widened* geometry
//! ([`Geometry::widened`]), so the magazine cache and the `nbbs-alloc`
//! facade stack on top of it unchanged.  The distance-aware fallback order
//! the two share lives here as [`nearest_first_order`].

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::{AllocError, FreeError};
use crate::geometry::Geometry;
use crate::stats::OpStatsSnapshot;
use crate::traits::BuddyBackend;

/// The distance-aware fallback order over `n` nodes starting at `start`:
/// the start node first, then its neighbours by increasing ring distance,
/// alternating sides (`start`, `start+1`, `start-1`, `start+2`, `start-2`,
/// …, wrapping modulo `n`).
///
/// This mirrors how a NUMA zone list prefers close nodes: the old
/// `MultiInstance` scan walked `start, start+1, …, start+n-1`, which made
/// the node *just before* the start the **last** candidate even though it is
/// distance 1 away on the ring.  Every node is yielded exactly once.
pub fn nearest_first_order(start: usize, n: usize) -> impl Iterator<Item = usize> {
    debug_assert!(n > 0, "need at least one node");
    let start = if n == 0 { 0 } else { start % n };
    (0..n).map(move |k| {
        // k = 0 → start; odd k → +((k+1)/2); even k → -(k/2).
        let d = k.div_ceil(2);
        if k % 2 == 1 {
            (start + d) % n
        } else {
            (start + n - (d % n)) % n
        }
    })
}

/// A set of buddy instances with per-thread home routing and fallback.
///
/// Offsets returned by [`MultiInstance::alloc`] are *global*: instance `i`
/// owns the range `[i * total, (i+1) * total)`, so a single `usize` still
/// identifies both the instance and the chunk, and `dealloc` needs no extra
/// bookkeeping — exactly how physical frame numbers identify their NUMA node.
#[deprecated(
    since = "0.1.0",
    note = "use nbbs-numa's NodeSet: it implements BuddyBackend over a widened \
            geometry, so the magazine cache and the allocator facade stack on top"
)]
pub struct MultiInstance<A> {
    instances: Vec<A>,
    next_home: AtomicUsize,
}

#[allow(deprecated)]
impl<A: BuddyBackend> MultiInstance<A> {
    /// Builds a multi-instance allocator from identically-configured
    /// instances.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or the instances disagree on their
    /// total size (the global-offset arithmetic requires a uniform size).
    pub fn new(instances: Vec<A>) -> Self {
        assert!(!instances.is_empty(), "need at least one instance");
        let total = instances[0].total_memory();
        assert!(
            instances.iter().all(|i| i.total_memory() == total),
            "all instances must manage the same amount of memory"
        );
        MultiInstance {
            instances,
            next_home: AtomicUsize::new(0),
        }
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Access to a specific instance (e.g. for per-node statistics).
    pub fn instance(&self, i: usize) -> &A {
        &self.instances[i]
    }

    /// Size managed by each single instance.
    pub fn instance_memory(&self) -> usize {
        self.instances[0].total_memory()
    }

    /// Total memory managed across all instances.
    pub fn total_memory(&self) -> usize {
        self.instance_memory() * self.instances.len()
    }

    /// The home instance of the calling thread (round-robin assignment on
    /// first use, akin to binding threads to NUMA nodes).
    pub fn home_instance(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        HOME.with(|h| {
            let mut v = h.get();
            if v == usize::MAX {
                v = self.next_home.fetch_add(1, Ordering::Relaxed);
                h.set(v);
            }
            v % self.instances.len()
        })
    }

    /// Allocates from the calling thread's home instance, falling back to the
    /// other instances in [`nearest_first_order`] (closest ring neighbours
    /// first, like a NUMA zone list) when the home instance cannot satisfy
    /// the request.  Returns a *global* offset.
    pub fn alloc(&self, size: usize) -> Option<usize> {
        let n = self.instances.len();
        let home = self.home_instance();
        for i in nearest_first_order(home, n) {
            if let Some(off) = self.instances[i].alloc(size) {
                return Some(i * self.instance_memory() + off);
            }
        }
        None
    }

    /// Allocates explicitly from instance `i` (no fallback), like a
    /// `__GFP_THISNODE` kernel allocation.
    pub fn alloc_on(&self, i: usize, size: usize) -> Option<usize> {
        self.instances[i]
            .alloc(size)
            .map(|off| i * self.instance_memory() + off)
    }

    /// Fallible allocation with fallback.
    pub fn try_alloc(&self, size: usize) -> Result<usize, AllocError> {
        if size > self.instances[0].max_size() {
            return Err(AllocError::TooLarge {
                requested: size,
                max_size: self.instances[0].max_size(),
            });
        }
        self.alloc(size)
            .ok_or(AllocError::OutOfMemory { requested: size })
    }

    /// Releases a global offset to the instance that owns it.
    pub fn dealloc(&self, global_offset: usize) {
        let (i, off) = self.split(global_offset);
        self.instances[i].dealloc(off);
    }

    /// Fallible release of a global offset.
    pub fn try_dealloc(&self, global_offset: usize) -> Result<(), FreeError> {
        if global_offset >= self.total_memory() {
            return Err(FreeError::OutOfRange {
                offset: global_offset,
                total_memory: self.total_memory(),
            });
        }
        let (i, off) = self.split(global_offset);
        self.instances[i].try_dealloc(off)
    }

    /// Splits a global offset into `(instance, local offset)`.
    pub fn split(&self, global_offset: usize) -> (usize, usize) {
        let per = self.instance_memory();
        (global_offset / per, global_offset % per)
    }

    /// Which instance owns a given global offset.
    pub fn owner_of(&self, global_offset: usize) -> usize {
        self.split(global_offset).0
    }

    /// Bytes currently handed out across all instances.
    pub fn allocated_bytes(&self) -> usize {
        self.instances.iter().map(|i| i.allocated_bytes()).sum()
    }

    /// Per-instance allocated-byte counters (to observe skew).
    pub fn allocated_bytes_per_instance(&self) -> Vec<usize> {
        self.instances.iter().map(|i| i.allocated_bytes()).collect()
    }

    /// Geometry shared by the instances.
    pub fn geometry(&self) -> &Geometry {
        self.instances[0].geometry()
    }

    /// Merged caching-layer counters across the instances, or `None` when no
    /// instance has a caching front-end.
    ///
    /// Each per-node cache keeps its own depot shards, so the merged
    /// `depot_shards` reports the fleet-wide shard count.
    pub fn cache_stats(&self) -> Option<crate::stats::CacheStatsSnapshot> {
        let mut merged: Option<crate::stats::CacheStatsSnapshot> = None;
        for i in &self.instances {
            if let Some(s) = i.cache_stats() {
                merged.get_or_insert_with(Default::default).merge(&s);
            }
        }
        merged
    }

    /// Merged per-class magazine capacities across the instances, or `None`
    /// when no instance has a caching front-end.
    ///
    /// Each per-node cache adapts its capacities independently; the merged
    /// view reports, per class size, the *largest* capacity any instance
    /// converged to (the geometry a burst on that node earned).
    pub fn cache_class_capacities(&self) -> Option<Vec<(usize, usize)>> {
        let mut merged: Option<std::collections::BTreeMap<usize, usize>> = None;
        for i in &self.instances {
            if let Some(caps) = i.cache_class_capacities() {
                let map = merged.get_or_insert_with(Default::default);
                for (size, cap) in caps {
                    let entry = map.entry(size).or_insert(0);
                    *entry = (*entry).max(cap);
                }
            }
        }
        merged.map(|m| m.into_iter().collect())
    }

    /// Returns chunks parked in every instance's caching layer (if any) to
    /// the backing allocators; a no-op over plain backends.
    pub fn drain_cache(&self) {
        for i in &self.instances {
            i.drain_cache();
        }
    }

    /// Aggregated operation statistics.
    pub fn stats(&self) -> OpStatsSnapshot {
        let mut acc = OpStatsSnapshot::default();
        for i in &self.instances {
            acc.merge(&i.stats());
        }
        acc
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{BuddyConfig, NbbsFourLevel, NbbsOneLevel};
    use std::sync::Arc;

    #[test]
    fn nearest_first_order_is_a_distance_symmetric_permutation() {
        for n in 1..=9usize {
            for start in 0..n {
                let order: Vec<usize> = nearest_first_order(start, n).collect();
                assert_eq!(order[0], start, "start node first (n={n})");
                let mut seen: Vec<usize> = order.clone();
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "permutation (n={n})");
                // Ring distance is non-decreasing along the order.
                let dist = |i: usize| {
                    let d = (i + n - start) % n;
                    d.min(n - d)
                };
                for w in order.windows(2) {
                    assert!(
                        dist(w[1]) >= dist(w[0]),
                        "distance must not decrease: {order:?} (n={n}, start={start})"
                    );
                }
            }
        }
    }

    #[test]
    fn wrapped_neighbour_is_an_early_fallback() {
        // The old 0..n scan made instance n-1 the *last* candidate for a
        // thread homed on 0, although it is distance 1 on the ring.
        let order: Vec<usize> = nearest_first_order(0, 4).collect();
        assert_eq!(order, vec![0, 1, 3, 2]);
    }

    fn instances(n: usize, total: usize) -> MultiInstance<NbbsOneLevel> {
        MultiInstance::new(
            (0..n)
                .map(|_| NbbsOneLevel::new(BuddyConfig::new(total, 64, total).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn global_offsets_round_trip() {
        let m = instances(4, 4096);
        assert_eq!(m.total_memory(), 4 * 4096);
        let off = m.alloc_on(2, 64).unwrap();
        assert_eq!(m.owner_of(off), 2);
        assert_eq!(m.split(off), (2, off - 2 * 4096));
        m.dealloc(off);
        assert_eq!(m.allocated_bytes(), 0);
    }

    #[test]
    fn fallback_when_home_is_exhausted() {
        let m = instances(2, 1024);
        // Exhaust instance 0 explicitly.
        let mut held = Vec::new();
        while let Some(off) = m.alloc_on(0, 1024) {
            held.push(off);
        }
        // A routed allocation still succeeds by falling back to instance 1.
        let off = m.alloc(1024).expect("fallback instance has room");
        assert_eq!(m.owner_of(off), 1);
        m.dealloc(off);
        for off in held {
            m.dealloc(off);
        }
    }

    #[test]
    fn exhaustion_of_all_instances_reports_oom() {
        let m = instances(2, 1024);
        let a = m.alloc(1024).unwrap();
        let b = m.alloc(1024).unwrap();
        assert_ne!(m.owner_of(a), m.owner_of(b));
        assert!(matches!(
            m.try_alloc(64),
            Err(AllocError::OutOfMemory { .. })
        ));
        assert!(matches!(
            m.try_alloc(4096),
            Err(AllocError::TooLarge { .. })
        ));
        m.dealloc(a);
        m.dealloc(b);
    }

    #[test]
    fn try_dealloc_validates_global_range() {
        let m = instances(2, 1024);
        assert!(matches!(
            m.try_dealloc(10_000),
            Err(FreeError::OutOfRange { .. })
        ));
        let off = m.alloc(64).unwrap();
        assert!(m.try_dealloc(off).is_ok());
    }

    #[test]
    fn threads_spread_across_instances() {
        let m = Arc::new(MultiInstance::new(
            (0..4)
                .map(|_| NbbsFourLevel::new(BuddyConfig::new(1 << 14, 64, 1 << 12).unwrap()))
                .collect::<Vec<_>>(),
        ));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut live = Vec::new();
                    for _ in 0..500 {
                        if let Some(off) = m.alloc(128) {
                            live.push(off);
                        }
                        if live.len() > 16 {
                            m.dealloc(live.swap_remove(0));
                        }
                    }
                    for off in live {
                        m.dealloc(off);
                    }
                    m.home_instance()
                })
            })
            .collect();
        let homes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(m.allocated_bytes(), 0);
        // With 8 threads round-robined over 4 instances, at least two
        // distinct homes must have been assigned.
        let distinct: std::collections::HashSet<_> = homes.into_iter().collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_instance_list_panics() {
        let _ = MultiInstance::<NbbsOneLevel>::new(Vec::new());
    }

    #[test]
    fn per_instance_counters_expose_skew() {
        let m = instances(2, 4096);
        let a = m.alloc_on(0, 1024).unwrap();
        let b = m.alloc_on(0, 512).unwrap();
        let per = m.allocated_bytes_per_instance();
        assert_eq!(per, vec![1536, 0]);
        m.dealloc(a);
        m.dealloc(b);
    }
}
