//! Runtime verification of the paper's safety properties.
//!
//! The appendix of the paper proves two safety properties:
//!
//! * **S1** — a successful allocation returns a non-allocated set of memory
//!   addresses coherent with the requested size;
//! * **S2** — a correct invocation of a free releases exactly the memory
//!   targeted by the request;
//!
//! together with the supporting axioms AX1–AX4 (allocations are contiguous,
//! size-aligned, of size `2^H`, and every climb updates all traversed nodes).
//!
//! This module re-checks those properties *dynamically*: given an allocator
//! (through [`TreeInspect`]) and the set of allocations the caller believes
//! are live, [`audit`] validates that the live set is consistent (S1-style
//! non-overlap, alignment, sizing) and that the allocator's metadata agrees
//! with it (every live chunk's node is occupied, every ancestor up to
//! `max_level` reflects the occupancy, and — when the allocator is quiescent —
//! nothing else is marked).  The property-based and stress tests in this
//! crate and in the workspace `tests/` directory drive it after every
//! quiescent point.

use std::collections::BTreeMap;

use crate::status::{is_free, is_occupied, COAL_LEFT, COAL_RIGHT};
use crate::traits::TreeInspect;

/// A single discrepancy found by [`audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A live chunk lies (partly) outside the managed region.
    OutOfRange {
        /// Offending offset.
        offset: usize,
        /// Claimed size.
        size: usize,
    },
    /// A live chunk's offset is not aligned to its granted size (violates AX2).
    Misaligned {
        /// Offending offset.
        offset: usize,
        /// Granted size.
        size: usize,
    },
    /// Two live chunks overlap (violates S1).
    Overlap {
        /// First chunk (offset, size).
        first: (usize, usize),
        /// Second chunk (offset, size).
        second: (usize, usize),
    },
    /// The node that should back a live chunk is not marked occupied.
    NodeNotOccupied {
        /// Tree node index.
        node: usize,
        /// Offset of the chunk.
        offset: usize,
    },
    /// An ancestor of a live chunk (at an allocatable level) appears free.
    AncestorNotMarked {
        /// Ancestor node index.
        ancestor: usize,
        /// Descendant (allocated) node index.
        node: usize,
    },
    /// A node is marked busy although no live chunk explains it
    /// (only reported for quiescent audits).
    StrayOccupancy {
        /// Offending node index.
        node: usize,
        /// Its status byte.
        status: u8,
    },
    /// A coalescing bit survived although the allocator is quiescent.
    StrayCoalescing {
        /// Offending node index.
        node: usize,
        /// Its status byte.
        status: u8,
    },
    /// The `index[]` entry for a live chunk does not point at its node.
    IndexMismatch {
        /// Allocation-unit index.
        unit: usize,
        /// Node recorded in `index[]` (if any).
        recorded: Option<usize>,
        /// Node expected from the live set.
        expected: usize,
    },
}

/// Result of an audit: either clean or a list of violations.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// All violations found.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the audit found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable message if the audit found violations.
    ///
    /// Intended for use in tests:
    /// `audit(&buddy, &live, true).assert_clean();`
    #[track_caller]
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "allocator audit failed with {} violation(s): {:#?}",
            self.violations.len(),
            self.violations
        );
    }
}

/// Audits allocator metadata against a caller-supplied live set.
///
/// * `live` maps chunk offsets to the sizes *requested* (they are rounded to
///   granted sizes internally).
/// * `quiescent` must be `true` only when no allocator operation is in
///   flight; it enables the "nothing else is marked" checks (stray occupancy
///   and leftover coalescing bits), which cannot hold mid-operation.
pub fn audit<T: TreeInspect>(
    alloc: &T,
    live: &BTreeMap<usize, usize>,
    quiescent: bool,
) -> AuditReport {
    let geo = alloc.inspect_geometry();
    let mut report = AuditReport::default();
    let mut chunks: Vec<(usize, usize, usize)> = Vec::with_capacity(live.len()); // (offset, granted, node)

    // --- live-set internal consistency (S1, AX1–AX3) -----------------------
    for (&offset, &requested) in live {
        let granted = match geo.granted_size(requested) {
            Some(g) => g,
            None => {
                report.violations.push(Violation::OutOfRange {
                    offset,
                    size: requested,
                });
                continue;
            }
        };
        if offset + granted > geo.total_memory() {
            report.violations.push(Violation::OutOfRange {
                offset,
                size: granted,
            });
            continue;
        }
        if offset % granted != 0 {
            report.violations.push(Violation::Misaligned {
                offset,
                size: granted,
            });
        }
        let level = geo.target_level(requested).expect("validated above");
        let node = geo.node_at(level, offset / geo.size_of_level(level));
        chunks.push((offset, granted, node));
    }

    chunks.sort_unstable();
    for pair in chunks.windows(2) {
        let (o1, s1, _) = pair[0];
        let (o2, s2, _) = pair[1];
        if o1 + s1 > o2 {
            report.violations.push(Violation::Overlap {
                first: (o1, s1),
                second: (o2, s2),
            });
        }
    }

    // --- metadata agrees with the live set ---------------------------------
    for &(offset, _granted, node) in &chunks {
        let status = alloc.node_status(node);
        if !is_occupied(status) {
            report
                .violations
                .push(Violation::NodeNotOccupied { node, offset });
        }
        // Every proper ancestor within the allocatable range must be non-free
        // so that no other allocation can grab a covering chunk.
        let mut anc = node;
        while anc > 1 && geo.level_of(anc) > geo.max_level() {
            anc >>= 1;
            if geo.level_of(anc) < geo.max_level() {
                break;
            }
            if is_free(alloc.node_status(anc)) {
                report.violations.push(Violation::AncestorNotMarked {
                    ancestor: anc,
                    node,
                });
            }
        }
        // index[] must route a future free of this offset back to `node`.
        let unit = geo.unit_of_offset(offset);
        match alloc.recorded_node_of_unit(unit) {
            Some(recorded) if recorded == node => {}
            other => report.violations.push(Violation::IndexMismatch {
                unit,
                recorded: other,
                expected: node,
            }),
        }
    }

    // --- quiescent-only: nothing unexplained is marked ---------------------
    if quiescent {
        for n in 1..geo.tree_len() {
            let status = alloc.node_status(n);
            if status == 0 {
                continue;
            }
            // A coalescing bit may legitimately persist at quiescence on a
            // branch that still contains live chunks: the 4-level variant's
            // release climb must mark the coalescing bit on the ancestor
            // boundary *before* it can tell whether other chunks in the
            // bunch keep the branch busy (the bunch fold packs that
            // information into a different word, so the two cannot be
            // checked atomically), and the matching unmark then correctly
            // refuses to climb while the branch is occupied.  The bit is
            // cleared together with the occupancy bits by the release of
            // the branch's last chunk, so on an *empty* branch it is stray.
            for (coal_bit, child) in [(COAL_LEFT, n << 1), (COAL_RIGHT, (n << 1) | 1)] {
                if status & coal_bit == 0 {
                    continue;
                }
                let branch_live = child < geo.tree_len()
                    && chunks
                        .iter()
                        .any(|&(_, _, node)| geo.is_ancestor_or_self(child, node));
                if !branch_live {
                    report
                        .violations
                        .push(Violation::StrayCoalescing { node: n, status });
                }
            }
            if !is_free(status) {
                // Busy is legitimate iff this node is an allocated chunk or it
                // is related (ancestor or descendant) to one.
                let explained = chunks.iter().any(|&(_, _, node)| {
                    geo.is_ancestor_or_self(n, node) || geo.is_ancestor_or_self(node, n)
                });
                if !explained {
                    report
                        .violations
                        .push(Violation::StrayOccupancy { node: n, status });
                }
            }
        }
    }

    report
}

/// Convenience helper: audit an allocator expected to be completely empty.
pub fn audit_empty<T: TreeInspect>(alloc: &T) -> AuditReport {
    audit(alloc, &BTreeMap::new(), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuddyConfig, NbbsFourLevel, NbbsOneLevel, ScanPolicy};

    fn one(total: usize, min: usize, max: usize) -> NbbsOneLevel {
        NbbsOneLevel::new(
            BuddyConfig::new(total, min, max)
                .unwrap()
                .with_scan_policy(ScanPolicy::FirstFit),
        )
    }

    fn four(total: usize, min: usize, max: usize) -> NbbsFourLevel {
        NbbsFourLevel::new(
            BuddyConfig::new(total, min, max)
                .unwrap()
                .with_scan_policy(ScanPolicy::FirstFit),
        )
    }

    #[test]
    fn empty_allocators_audit_clean() {
        audit_empty(&one(1 << 12, 8, 1 << 12)).assert_clean();
        audit_empty(&four(1 << 12, 8, 1 << 12)).assert_clean();
    }

    #[test]
    fn live_allocations_audit_clean_one_level() {
        let b = one(1 << 14, 8, 1 << 10);
        let mut live = BTreeMap::new();
        for &size in &[8usize, 100, 1024, 64, 512] {
            let off = b.alloc(size).unwrap();
            live.insert(off, size);
        }
        audit(&b, &live, true).assert_clean();
        for &off in live.keys() {
            b.dealloc(off);
        }
        audit_empty(&b).assert_clean();
    }

    #[test]
    fn live_allocations_audit_clean_four_level() {
        let b = four(1 << 14, 8, 1 << 10);
        let mut live = BTreeMap::new();
        for &size in &[8usize, 100, 1024, 64, 512, 16, 16] {
            let off = b.alloc(size).unwrap();
            live.insert(off, size);
        }
        audit(&b, &live, true).assert_clean();
        for &off in live.keys() {
            b.dealloc(off);
        }
        audit_empty(&b).assert_clean();
    }

    #[test]
    fn missing_live_entry_is_reported_as_stray() {
        let b = one(1 << 12, 8, 1 << 12);
        let _off = b.alloc(64).unwrap();
        // We "forget" to tell the auditor about the allocation.
        let report = audit(&b, &BTreeMap::new(), true);
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StrayOccupancy { .. })));
    }

    #[test]
    fn phantom_live_entry_is_reported() {
        let b = one(1 << 12, 8, 1 << 12);
        // Claim something is live that was never allocated.
        let mut live = BTreeMap::new();
        live.insert(256, 128usize);
        let report = audit(&b, &live, true);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NodeNotOccupied { .. })));
    }

    #[test]
    fn overlapping_live_set_is_reported() {
        let b = one(1 << 12, 8, 1 << 12);
        // The live set itself is contradictory; the auditor must notice even
        // before looking at the allocator.
        let mut live = BTreeMap::new();
        live.insert(0, 1024usize);
        live.insert(512, 64usize);
        let report = audit(&b, &live, false);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. })));
    }

    #[test]
    fn out_of_range_and_misaligned_entries_are_reported() {
        let b = one(1 << 12, 8, 1 << 12);
        let mut live = BTreeMap::new();
        live.insert(1 << 12, 8usize); // starts exactly at the end
        live.insert(24, 64usize); // 64-byte chunk cannot start at offset 24
        let report = audit(&b, &live, false);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OutOfRange { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Misaligned { .. })));
    }

    #[test]
    fn audit_report_panics_with_context() {
        let b = one(1 << 12, 8, 1 << 12);
        let _off = b.alloc(64).unwrap();
        let report = audit(&b, &BTreeMap::new(), true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            report.assert_clean();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn quiescent_flag_gates_stray_checks() {
        let b = one(1 << 12, 8, 1 << 12);
        let _off = b.alloc(64).unwrap();
        // Non-quiescent audits skip the stray-occupancy sweep entirely.
        let report = audit(&b, &BTreeMap::new(), false);
        assert!(report.is_clean());
    }
}
