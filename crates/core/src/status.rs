//! Status-bit algebra (Figure 1 of the paper).
//!
//! Every tree node carries five status bits:
//!
//! ```text
//!  bit 4      bit 3      bit 2      bit 1      bit 0
//! ┌──────────┬──────────┬──────────┬──────────┬──────────┐
//! │ occupied │   left   │  right   │   left   │  right   │
//! │          │coalescent│coalescent│ occupied │ occupied │
//! └──────────┴──────────┴──────────┴──────────┴──────────┘
//! ```
//!
//! * `OCC` — an allocation targeted exactly this node.
//! * `OCC_LEFT` / `OCC_RIGHT` — the left/right subtree is partially or totally
//!   occupied (some allocation was served inside it).
//! * `COAL_LEFT` / `COAL_RIGHT` — a release operation is in flight inside the
//!   left/right subtree (transient state used to coordinate frees with racing
//!   allocations).
//!
//! The helper functions mirror §III-A exactly: they take the status value of
//! a node plus the index of the *child* through which a traversal reached it,
//! and use the child's parity (left children have even indices, right
//! children odd ones) to select the bit of the relevant branch.
//!
//! All functions are pure and branch-free, which is essential because they
//! sit inside CAS retry loops on the allocator's hot path.

/// The right subtree contains at least one allocation.
pub const OCC_RIGHT: u8 = 0x1;
/// The left subtree contains at least one allocation.
pub const OCC_LEFT: u8 = 0x2;
/// A release is in flight in the right subtree.
pub const COAL_RIGHT: u8 = 0x4;
/// A release is in flight in the left subtree.
pub const COAL_LEFT: u8 = 0x8;
/// An allocation was served by exactly this node.
pub const OCC: u8 = 0x10;
/// Any bit that makes a node non-free: occupied itself, or either subtree
/// (partially) occupied.
pub const BUSY: u8 = OCC | OCC_LEFT | OCC_RIGHT;
/// Mask of all meaningful status bits.
pub const STATUS_MASK: u8 = OCC | OCC_LEFT | OCC_RIGHT | COAL_LEFT | COAL_RIGHT;

/// Number of status bits per node (used by the 4-level packing).
pub const STATUS_BITS: u32 = 5;

/// Parity selector: 0 for a left child (even index), 1 for a right child.
#[inline(always)]
fn mod2(child: usize) -> u8 {
    (child & 1) as u8
}

/// Clears the coalescing bit of the branch leading to `child`.
///
/// Used while an allocation climbs the tree: marking the branch as occupied
/// must simultaneously tell any in-flight release that the branch has been
/// reused and must not be marked free (§III-B).
#[inline(always)]
pub fn clean_coal(val: u8, child: usize) -> u8 {
    val & !(COAL_LEFT >> mod2(child))
}

/// Sets the occupancy bit of the branch leading to `child`.
#[inline(always)]
pub fn mark(val: u8, child: usize) -> u8 {
    val | (OCC_LEFT >> mod2(child))
}

/// Clears both the coalescing and the occupancy bits of the branch leading to
/// `child` (used by the third phase of a release).
#[inline(always)]
pub fn unmark(val: u8, child: usize) -> u8 {
    val & !((OCC_LEFT | COAL_LEFT) >> mod2(child))
}

/// Is the coalescing bit of the branch leading to `child` set?
#[inline(always)]
pub fn is_coal(val: u8, child: usize) -> bool {
    val & (COAL_LEFT >> mod2(child)) != 0
}

/// Is the *buddy* branch (the sibling of `child`) occupied?
#[inline(always)]
pub fn is_occ_buddy(val: u8, child: usize) -> bool {
    val & (OCC_RIGHT << mod2(child)) != 0
}

/// Is a release in flight in the *buddy* branch (the sibling of `child`)?
#[inline(always)]
pub fn is_coal_buddy(val: u8, child: usize) -> bool {
    val & (COAL_RIGHT << mod2(child)) != 0
}

/// Is this node completely free (not occupied, neither subtree occupied)?
///
/// Note that coalescing bits do **not** make a node busy: a node whose
/// subtree is merely being released may still be considered free by the level
/// scan, and the subsequent CAS from the all-zero state arbitrates the race.
#[inline(always)]
pub fn is_free(val: u8) -> bool {
    val & BUSY == 0
}

/// Is this node occupied by an allocation targeted exactly at it?
#[inline(always)]
pub fn is_occupied(val: u8) -> bool {
    val & OCC != 0
}

/// Human-readable rendering of a status byte, for diagnostics and tests.
pub fn describe(val: u8) -> String {
    let mut parts = Vec::new();
    if val & OCC != 0 {
        parts.push("OCC");
    }
    if val & OCC_LEFT != 0 {
        parts.push("OCC_LEFT");
    }
    if val & OCC_RIGHT != 0 {
        parts.push("OCC_RIGHT");
    }
    if val & COAL_LEFT != 0 {
        parts.push("COAL_LEFT");
    }
    if val & COAL_RIGHT != 0 {
        parts.push("COAL_RIGHT");
    }
    if parts.is_empty() {
        "FREE".to_string()
    } else {
        parts.join("|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Child indices with known parity: 4 is a left child, 5 a right child.
    const LEFT_CHILD: usize = 4;
    const RIGHT_CHILD: usize = 5;

    #[test]
    fn masks_match_paper_constants() {
        assert_eq!(OCC_RIGHT, 0x1);
        assert_eq!(OCC_LEFT, 0x2);
        assert_eq!(COAL_RIGHT, 0x4);
        assert_eq!(COAL_LEFT, 0x8);
        assert_eq!(OCC, 0x10);
        assert_eq!(BUSY, 0x13);
        assert_eq!(STATUS_MASK, 0x1F);
    }

    #[test]
    fn mark_selects_branch_by_child_parity() {
        assert_eq!(mark(0, LEFT_CHILD), OCC_LEFT);
        assert_eq!(mark(0, RIGHT_CHILD), OCC_RIGHT);
        // Marking is idempotent and preserves other bits.
        assert_eq!(
            mark(OCC_LEFT | COAL_RIGHT, LEFT_CHILD),
            OCC_LEFT | COAL_RIGHT
        );
        assert_eq!(mark(OCC_LEFT, RIGHT_CHILD), OCC_LEFT | OCC_RIGHT);
    }

    #[test]
    fn clean_coal_clears_only_the_branch_bit() {
        let all = COAL_LEFT | COAL_RIGHT | OCC_LEFT;
        assert_eq!(clean_coal(all, LEFT_CHILD), COAL_RIGHT | OCC_LEFT);
        assert_eq!(clean_coal(all, RIGHT_CHILD), COAL_LEFT | OCC_LEFT);
        assert_eq!(clean_coal(0, LEFT_CHILD), 0);
    }

    #[test]
    fn unmark_clears_occupancy_and_coalescing_of_branch() {
        let v = OCC_LEFT | COAL_LEFT | OCC_RIGHT | COAL_RIGHT;
        assert_eq!(unmark(v, LEFT_CHILD), OCC_RIGHT | COAL_RIGHT);
        assert_eq!(unmark(v, RIGHT_CHILD), OCC_LEFT | COAL_LEFT);
        // OCC of the node itself is never touched by unmark.
        assert_eq!(unmark(OCC | OCC_LEFT, LEFT_CHILD), OCC);
    }

    #[test]
    fn coal_queries_select_branch_and_buddy() {
        assert!(is_coal(COAL_LEFT, LEFT_CHILD));
        assert!(!is_coal(COAL_LEFT, RIGHT_CHILD));
        assert!(is_coal(COAL_RIGHT, RIGHT_CHILD));
        assert!(!is_coal(COAL_RIGHT, LEFT_CHILD));

        // Buddy of a left child is the right branch and vice versa.
        assert!(is_occ_buddy(OCC_RIGHT, LEFT_CHILD));
        assert!(!is_occ_buddy(OCC_RIGHT, RIGHT_CHILD));
        assert!(is_occ_buddy(OCC_LEFT, RIGHT_CHILD));
        assert!(is_coal_buddy(COAL_RIGHT, LEFT_CHILD));
        assert!(is_coal_buddy(COAL_LEFT, RIGHT_CHILD));
        assert!(!is_coal_buddy(COAL_LEFT, LEFT_CHILD));
    }

    #[test]
    fn is_free_ignores_coalescing_bits() {
        assert!(is_free(0));
        assert!(is_free(COAL_LEFT));
        assert!(is_free(COAL_RIGHT | COAL_LEFT));
        assert!(!is_free(OCC));
        assert!(!is_free(OCC_LEFT));
        assert!(!is_free(OCC_RIGHT));
        assert!(!is_free(BUSY));
    }

    #[test]
    fn occupied_checks_only_occ_bit() {
        assert!(is_occupied(OCC));
        assert!(is_occupied(BUSY));
        assert!(!is_occupied(OCC_LEFT | OCC_RIGHT | COAL_LEFT | COAL_RIGHT));
    }

    #[test]
    fn mark_then_unmark_round_trips() {
        for child in [LEFT_CHILD, RIGHT_CHILD] {
            for base in 0..=STATUS_MASK {
                // Clearing afterwards removes whatever marking added.
                let marked = mark(base, child);
                let cleared = unmark(marked, child);
                assert_eq!(cleared, unmark(base, child));
            }
        }
    }

    #[test]
    fn tryalloc_update_matches_paper_example() {
        // Figure 3 step 2: a node whose right branch is free gets its
        // left-occupancy bit set while clearing the left coalescing bit.
        let before = COAL_LEFT | OCC_RIGHT;
        let after = mark(clean_coal(before, LEFT_CHILD), LEFT_CHILD);
        assert_eq!(after, OCC_LEFT | OCC_RIGHT);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(describe(0), "FREE");
        assert_eq!(describe(BUSY), "OCC|OCC_LEFT|OCC_RIGHT");
        assert!(describe(COAL_LEFT).contains("COAL_LEFT"));
    }

    #[test]
    fn exhaustive_branch_bit_consistency() {
        // For every status value and child parity, the helpers agree with a
        // straightforward re-derivation from first principles.
        for val in 0..=STATUS_MASK {
            for child in [LEFT_CHILD, RIGHT_CHILD] {
                let left = child % 2 == 0;
                let occ_bit = if left { OCC_LEFT } else { OCC_RIGHT };
                let coal_bit = if left { COAL_LEFT } else { COAL_RIGHT };
                let buddy_occ = if left { OCC_RIGHT } else { OCC_LEFT };
                let buddy_coal = if left { COAL_RIGHT } else { COAL_LEFT };

                assert_eq!(mark(val, child), val | occ_bit);
                assert_eq!(clean_coal(val, child), val & !coal_bit);
                assert_eq!(unmark(val, child), val & !(occ_bit | coal_bit));
                assert_eq!(is_coal(val, child), val & coal_bit != 0);
                assert_eq!(is_occ_buddy(val, child), val & buddy_occ != 0);
                assert_eq!(is_coal_buddy(val, child), val & buddy_coal != 0);
            }
        }
    }
}
