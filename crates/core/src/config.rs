//! Allocator configuration.
//!
//! A buddy system is fully described by three power-of-two quantities: the
//! size of the managed region (`total_memory`), the size of the smallest
//! allocatable chunk (`min_size` — the paper's *allocation unit*, the size
//! tracked by the leaves of the tree) and the size of the largest chunk a
//! single request may obtain (`max_size`, available at the paper's
//! `max_level`).  The paper's user-space evaluation uses `min_size = 8 B` and
//! `max_size = 16 KiB`; the kernel-level comparison uses page granularity.

use crate::error::ConfigError;

/// Maximum supported tree depth.
///
/// Node indices must fit in a `u32` (the `index[]` array stores them as
/// `u32`), which caps the depth at 30; this is far beyond anything practical
/// (a depth-30 tree over 8-byte units would describe an 8 GiB region with
/// two billion tracked leaves).
pub const MAX_DEPTH: u32 = 30;

/// Policy used by the level scan of `NBALLOC` to pick its starting node.
///
/// §III-B of the paper: *“not necessarily such a search has to start from the
/// first node at that level. Rather, starting from scattered points will more
/// likely lead concurrent allocations […] to target different free nodes.”*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Every scan starts from the first node of the target level.
    ///
    /// Matches a textbook first-fit buddy search; maximizes conflicts between
    /// concurrent allocations of the same size (used by the scan-start
    /// ablation).
    FirstFit,
    /// Scans start from a per-thread scattered position (hash of the thread
    /// id) and wrap around the level.  This is the paper's recommendation and
    /// the default.
    #[default]
    Scattered,
}

/// Configuration of a buddy allocator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuddyConfig {
    total_memory: usize,
    min_size: usize,
    max_size: usize,
    scan_policy: ScanPolicy,
}

impl BuddyConfig {
    /// Creates a configuration managing `total_memory` bytes with allocation
    /// units of `min_size` bytes and a per-request cap of `max_size` bytes.
    ///
    /// All three values must be powers of two with
    /// `min_size <= max_size <= total_memory`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nbbs::BuddyConfig;
    ///
    /// // The paper's user-space configuration scaled to a 1 MiB arena:
    /// // 8-byte allocation units, 16 KiB maximum request.
    /// let config = BuddyConfig::new(1 << 20, 8, 1 << 14).unwrap();
    /// assert_eq!(config.depth(), 17);      // log2(1 MiB / 8 B)
    /// assert_eq!(config.max_level(), 6);   // log2(1 MiB / 16 KiB)
    /// ```
    pub fn new(total_memory: usize, min_size: usize, max_size: usize) -> Result<Self, ConfigError> {
        if total_memory == 0 || !total_memory.is_power_of_two() {
            return Err(ConfigError::TotalNotPowerOfTwo(total_memory));
        }
        if min_size == 0 || !min_size.is_power_of_two() {
            return Err(ConfigError::MinNotPowerOfTwo(min_size));
        }
        if max_size == 0 || !max_size.is_power_of_two() {
            return Err(ConfigError::MaxNotPowerOfTwo(max_size));
        }
        if min_size > max_size {
            return Err(ConfigError::MinAboveMax {
                min: min_size,
                max: max_size,
            });
        }
        if max_size > total_memory {
            return Err(ConfigError::MaxAboveTotal {
                max: max_size,
                total: total_memory,
            });
        }
        let depth = (total_memory / min_size).trailing_zeros();
        if depth > MAX_DEPTH {
            return Err(ConfigError::TooDeep {
                depth,
                limit: MAX_DEPTH,
            });
        }
        Ok(BuddyConfig {
            total_memory,
            min_size,
            max_size,
            scan_policy: ScanPolicy::default(),
        })
    }

    /// Convenience constructor where a single request may span the whole
    /// region (`max_size == total_memory`).
    pub fn whole_region(total_memory: usize, min_size: usize) -> Result<Self, ConfigError> {
        Self::new(total_memory, min_size, total_memory)
    }

    /// Returns a copy of this configuration with the given scan policy.
    #[must_use]
    pub fn with_scan_policy(mut self, policy: ScanPolicy) -> Self {
        self.scan_policy = policy;
        self
    }

    /// Total managed memory in bytes.
    #[inline]
    pub fn total_memory(&self) -> usize {
        self.total_memory
    }

    /// Allocation-unit size in bytes (size tracked by the tree leaves).
    #[inline]
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Largest size a single request may obtain, in bytes.
    #[inline]
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The scan-start policy used by allocations.
    #[inline]
    pub fn scan_policy(&self) -> ScanPolicy {
        self.scan_policy
    }

    /// Depth of the tree: leaves live at this level (root is level 0).
    ///
    /// Paper: `d = log2(total_memory / min_size)`.
    #[inline]
    pub fn depth(&self) -> u32 {
        (self.total_memory / self.min_size).trailing_zeros()
    }

    /// The topmost level at which allocations may be served.
    ///
    /// Paper: `max_level = log2(total_memory / max_size)`.
    #[inline]
    pub fn max_level(&self) -> u32 {
        (self.total_memory / self.max_size).trailing_zeros()
    }

    /// Number of allocation units (tree leaves).
    #[inline]
    pub fn unit_count(&self) -> usize {
        self.total_memory / self.min_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configuration_derives_levels() {
        let c = BuddyConfig::new(1 << 16, 16, 1 << 12).unwrap();
        assert_eq!(c.total_memory(), 1 << 16);
        assert_eq!(c.min_size(), 16);
        assert_eq!(c.max_size(), 1 << 12);
        assert_eq!(c.depth(), 12);
        assert_eq!(c.max_level(), 4);
        assert_eq!(c.unit_count(), 1 << 12);
        assert_eq!(c.scan_policy(), ScanPolicy::Scattered);
    }

    #[test]
    fn whole_region_sets_max_level_zero() {
        let c = BuddyConfig::whole_region(4096, 64).unwrap();
        assert_eq!(c.max_level(), 0);
        assert_eq!(c.max_size(), 4096);
        assert_eq!(c.depth(), 6);
    }

    #[test]
    fn paper_user_space_configuration() {
        // min 8 B, max 16 KiB as in §IV, over a 16 MiB arena.
        let c = BuddyConfig::new(16 << 20, 8, 16 << 10).unwrap();
        assert_eq!(c.depth(), 21);
        assert_eq!(c.max_level(), 10);
    }

    #[test]
    fn rejects_non_power_of_two_values() {
        assert_eq!(
            BuddyConfig::new(1000, 8, 64).unwrap_err(),
            ConfigError::TotalNotPowerOfTwo(1000)
        );
        assert_eq!(
            BuddyConfig::new(1024, 24, 64).unwrap_err(),
            ConfigError::MinNotPowerOfTwo(24)
        );
        assert_eq!(
            BuddyConfig::new(1024, 8, 96).unwrap_err(),
            ConfigError::MaxNotPowerOfTwo(96)
        );
        assert_eq!(
            BuddyConfig::new(0, 8, 8).unwrap_err(),
            ConfigError::TotalNotPowerOfTwo(0)
        );
        assert_eq!(
            BuddyConfig::new(1024, 0, 8).unwrap_err(),
            ConfigError::MinNotPowerOfTwo(0)
        );
    }

    #[test]
    fn rejects_inconsistent_orderings() {
        assert_eq!(
            BuddyConfig::new(1024, 128, 64).unwrap_err(),
            ConfigError::MinAboveMax { min: 128, max: 64 }
        );
        assert_eq!(
            BuddyConfig::new(1024, 8, 2048).unwrap_err(),
            ConfigError::MaxAboveTotal {
                max: 2048,
                total: 1024
            }
        );
    }

    #[test]
    fn rejects_excessive_depth() {
        let err = BuddyConfig::new(1 << 40, 1, 1 << 20).unwrap_err();
        assert!(matches!(err, ConfigError::TooDeep { depth: 40, .. }));
    }

    #[test]
    fn single_leaf_tree_is_allowed() {
        let c = BuddyConfig::new(64, 64, 64).unwrap();
        assert_eq!(c.depth(), 0);
        assert_eq!(c.max_level(), 0);
        assert_eq!(c.unit_count(), 1);
    }

    #[test]
    fn scan_policy_round_trip() {
        let c = BuddyConfig::new(1024, 8, 1024)
            .unwrap()
            .with_scan_policy(ScanPolicy::FirstFit);
        assert_eq!(c.scan_policy(), ScanPolicy::FirstFit);
    }
}
