//! The 1-level non-blocking buddy system (`1lvl-nb`).
//!
//! This is a faithful implementation of Algorithms 1–4 of the paper: one
//! status byte per tree node, every metadata update performed through a CAS,
//! no locks anywhere.
//!
//! * **Allocation** (`NBALLOC`/`TRYALLOC`): scan the target level for a free
//!   node, CAS its status from `0` to `BUSY`, then climb towards `max_level`
//!   marking the traversed branch as (partially) occupied and clearing its
//!   coalescing bit.  If a fully-occupied ancestor is met the allocation is
//!   rolled back and the scan resumes after the conflicting subtree.
//! * **Release** (`NBFREE`/`FREENODE`/`UNMARK`): three phases — mark the
//!   ancestors' coalescing bits, zero the released node, then climb again
//!   clearing coalescing + occupancy bits.  A concurrent allocation that
//!   reuses the branch clears the coalescing bit first, which makes the
//!   release's third phase stop early and leave the occupancy marks in place.
//!
//! The structure is lock-free: a CAS can only fail because another operation
//! made progress on the same word (see the paper's appendix; the progress
//! argument is exercised by the stress tests in `tests/`).

use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

use crate::config::{BuddyConfig, ScanPolicy};
use crate::error::FreeError;
use crate::geometry::Geometry;
use crate::stats::{OpStats, OpStatsSnapshot};
use crate::status::{
    clean_coal, is_coal, is_coal_buddy, is_free, is_occ_buddy, mark, unmark, BUSY, COAL_LEFT, OCC,
};
use crate::traits::{BuddyBackend, TreeInspect};

/// Per-thread scan cursor shared by both non-blocking variants.
///
/// Concurrent allocations bound to the same level start probing from
/// scattered positions (§III-B): the cursor is seeded from a hash of a
/// monotone thread counter, so threads start far apart.  It is additionally
/// advanced past every successful allocation so that a thread does not
/// rescan the run of chunks it just occupied — without this the level scan
/// degenerates to quadratic cost in batch-allocation patterns such as the
/// Thread Test benchmark.
pub(crate) mod scan_cursor {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT_SEED: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static CURSOR: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    /// Current cursor value for the calling thread (seeding it on first use).
    pub(crate) fn get() -> usize {
        CURSOR.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                // Fibonacci hashing of a monotone thread counter spreads
                // starting points uniformly over any level width.
                let raw = NEXT_SEED.fetch_add(1, Ordering::Relaxed);
                v = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                s.set(v);
            }
            v
        })
    }

    /// Moves the calling thread's cursor just past the node it last reserved.
    pub(crate) fn advance_past(node: usize) {
        CURSOR.with(|s| s.set(node + 1));
    }
}

/// The 1-level non-blocking buddy allocator.
///
/// See the [crate docs](crate) for a usage example.  All operations are
/// lock-free and may be invoked concurrently from any number of threads.
pub struct NbbsOneLevel {
    geo: Geometry,
    scan_policy: ScanPolicy,
    /// `tree[]`: one 5-bit status word per node; index 0 unused, root at 1.
    tree: Box<[AtomicU8]>,
    /// `index[]`: for each allocation unit, the node that served the chunk
    /// starting there.  Written on allocation, read on release; never cleared
    /// (the paper keeps stale entries, later allocations overwrite them).
    index: Box<[AtomicU32]>,
    /// Bytes currently handed out (granted sizes), for occupancy accounting.
    allocated: AtomicUsize,
    stats: OpStats,
}

impl NbbsOneLevel {
    /// Creates an allocator for the given configuration.
    ///
    /// Metadata footprint: one byte per node (`2 * total/min` bytes) plus a
    /// `u32` per allocation unit.
    pub fn new(config: BuddyConfig) -> Self {
        let geo = Geometry::new(&config);
        let tree = (0..geo.tree_len()).map(|_| AtomicU8::new(0)).collect();
        let index = (0..geo.unit_count()).map(|_| AtomicU32::new(0)).collect();
        NbbsOneLevel {
            geo,
            scan_policy: config.scan_policy(),
            tree,
            index,
            allocated: AtomicUsize::new(0),
            stats: OpStats::new(),
        }
    }

    /// The allocator's geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Allocates at least `size` bytes, returning the chunk's byte offset.
    ///
    /// Equivalent to [`BuddyBackend::alloc`]; provided inherently so callers
    /// do not need the trait in scope.
    pub fn alloc(&self, size: usize) -> Option<usize> {
        let level = self.geo.target_level(size)?;
        self.alloc_at_level(level)
    }

    /// Allocates one chunk of the exact order associated with `level`.
    ///
    /// `level` must lie in `[max_level, depth]`.  This entry point is useful
    /// for workloads expressed in buddy orders (e.g. page-frame allocation)
    /// rather than byte sizes.
    pub fn alloc_at_level(&self, level: u32) -> Option<usize> {
        debug_assert!(level >= self.geo.max_level() && level <= self.geo.depth());
        let first = self.geo.first_node_of_level(level);
        let count = self.geo.nodes_at_level(level);
        let start = match self.scan_policy {
            ScanPolicy::FirstFit => first,
            ScanPolicy::Scattered => first + (scan_cursor::get() % count),
        };

        // Scan [start, first + count) and then wrap to [first, start).
        if let Some(offset) = self.scan_range(level, start, first + count) {
            return Some(offset);
        }
        if start > first {
            if let Some(offset) = self.scan_range(level, first, start) {
                return Some(offset);
            }
        }
        self.stats.record_failed_alloc(1);
        None
    }

    /// Claims the *specific* block `[offset, offset + size)` — the targeted
    /// form of [`NbbsOneLevel::alloc_at_level`] the decommit scrubber uses
    /// to take ownership of a block the occupancy walk reported free.
    ///
    /// `size` must be the exact chunk size of an allocatable level and
    /// `offset` naturally aligned to it; returns `false` for an invalid
    /// descriptor or when the block gained an occupant since it was
    /// observed (the claim is the ordinary `TRYALLOC` CAS protocol, so a
    /// stale target simply fails).  On success the caller owns the block as
    /// if `alloc(size)` had returned it.  The scan cursor is deliberately
    /// not advanced: maintenance claims must not perturb placement.
    pub fn claim_block(&self, offset: usize, size: usize) -> bool {
        let Some(level) = self.geo.target_level(size) else {
            return false;
        };
        if self.geo.size_of_level(level) != size
            || !offset.is_multiple_of(size)
            || offset + size > self.geo.total_memory()
        {
            return false;
        }
        let n = self.geo.node_at(level, offset / size);
        if self.try_alloc_node(n).is_err() {
            return false;
        }
        self.index[self.geo.unit_of_offset(offset)].store(n as u32, Ordering::Release);
        self.allocated.fetch_add(size, Ordering::Relaxed);
        self.stats.record_alloc(1);
        true
    }

    /// Scans nodes of `level` with indices in `[from, to)`, attempting to
    /// reserve the first free one.  Implements lines A11–A22 of Algorithm 1,
    /// including the sub-tree skip after a failed `TRYALLOC`.
    fn scan_range(&self, level: u32, from: usize, to: usize) -> Option<usize> {
        let mut i = from;
        while i < to {
            if is_free(self.tree[i].load(Ordering::Acquire)) {
                match self.try_alloc_node(i) {
                    Ok(()) => {
                        let offset = self.geo.offset_of(i);
                        // Record which node serves this address (line A15).
                        self.index[self.geo.unit_of_offset(offset)]
                            .store(i as u32, Ordering::Release);
                        let granted = self.geo.size_of_level(level);
                        self.allocated.fetch_add(granted, Ordering::Relaxed);
                        self.stats.record_alloc(1);
                        if self.scan_policy == ScanPolicy::Scattered {
                            scan_cursor::advance_past(i);
                        }
                        return Some(offset);
                    }
                    Err(failed_at) => {
                        // Skip the whole subtree rooted at the conflicting
                        // ancestor (lines A18–A19): the next candidate at this
                        // level is the first node outside that subtree.
                        self.stats.record_skip(1);
                        let d = 1usize << (level - self.geo.level_of(failed_at));
                        i = (failed_at + 1) * d;
                        continue;
                    }
                }
            } else {
                self.stats.record_skip(1);
            }
            i += 1;
        }
        None
    }

    /// `TRYALLOC` (Algorithm 2): reserve node `n` and propagate the partial
    /// occupancy up to `max_level`.
    ///
    /// On success returns `Ok(())`; on failure returns the index of the node
    /// that caused the conflict (either `n` itself or a fully-occupied
    /// ancestor), after rolling back any marks already applied.
    fn try_alloc_node(&self, n: usize) -> Result<(), usize> {
        // Line T2: the node must transition atomically from completely free
        // (all five bits zero — coalescing bits included) to BUSY.
        self.stats.record_cas(1);
        if self.tree[n]
            .compare_exchange(0, BUSY, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.stats.record_cas_failure(1);
            self.stats
                .record_cas_failure_at(self.geo.level_of(n) as usize, 1);
            return Err(n);
        }

        // Lines T5–T18: climb towards max_level marking the traversed branch.
        let max_level = self.geo.max_level();
        let mut current = n;
        while self.geo.level_of(current) > max_level {
            let child = current;
            current >>= 1;
            loop {
                let cur_val = self.tree[current].load(Ordering::Acquire);
                if cur_val & OCC != 0 {
                    // A concurrent allocation owns this whole chunk: abort and
                    // revert the marks applied below it (line T12).
                    self.free_node(n, self.geo.level_of(child));
                    return Err(current);
                }
                let new_val = mark(clean_coal(cur_val, child), child);
                self.stats.record_cas(1);
                if self.tree[current]
                    .compare_exchange(cur_val, new_val, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(self.geo.level_of(current) as usize, 1);
                // The failure may be benign (the sibling branch changed);
                // re-read and retry — only an OCC ancestor aborts.
            }
        }
        Ok(())
    }

    /// Releases the chunk starting at byte `offset` (the paper's `NBFREE`).
    pub fn dealloc(&self, offset: usize) {
        let unit = self.geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        debug_assert!(n >= 1, "dealloc of never-allocated offset {offset}");
        let granted = self.geo.size_of(n);
        self.free_node(n, self.geo.max_level());
        self.allocated.fetch_sub(granted, Ordering::Relaxed);
        self.stats.record_free(1);
    }

    /// `FREENODE` (Algorithm 3): three-phase release of node `n`, climbing up
    /// to the node at `upper_level`.
    ///
    /// Called with `upper_level == max_level` by [`NbbsOneLevel::dealloc`],
    /// and with the level of the last successfully marked ancestor when
    /// rolling back a failed `TRYALLOC`.
    fn free_node(&self, n: usize, upper_level: u32) {
        // Phase 1 (lines F2–F18): mark the coalescing bit of the traversed
        // branch on every ancestor from parent(n) up to the upper bound,
        // stopping early if the buddy branch is occupied (the subtree above
        // cannot become free anyway).
        let mut runner = n;
        let mut current = n >> 1;
        while self.geo.level_of(runner) > upper_level {
            let or_val = COAL_LEFT >> ((runner & 1) as u8);
            let old_val;
            loop {
                let cur_val = self.tree[current].load(Ordering::Acquire);
                let new_val = cur_val | or_val;
                self.stats.record_cas(1);
                if self.tree[current]
                    .compare_exchange(cur_val, new_val, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    old_val = cur_val;
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(self.geo.level_of(current) as usize, 1);
            }
            if is_occ_buddy(old_val, runner) && !is_coal_buddy(old_val, runner) {
                break;
            }
            runner = current;
            current >>= 1;
        }

        // Phase 2 (line F19): the released node becomes completely free.
        self.tree[n].store(0, Ordering::Release);

        // Phase 3 (lines F20–F22): propagate the release upwards.
        if self.geo.level_of(n) > upper_level {
            self.unmark(n, upper_level);
        }
    }

    /// `UNMARK` (Algorithm 4): clear the coalescing and occupancy bits of the
    /// branch from `n` up to `upper_level`, stopping if a concurrent
    /// allocation already reused the branch (coalescing bit found cleared) or
    /// the buddy branch is occupied (no further merge possible).
    fn unmark(&self, n: usize, upper_level: u32) {
        let mut current = n;
        loop {
            let child = current;
            current >>= 1;
            let new_val;
            loop {
                let cur_val = self.tree[current].load(Ordering::Acquire);
                if !is_coal(cur_val, child) {
                    // Someone reused (or already cleaned) this branch.
                    return;
                }
                let candidate = unmark(cur_val, child);
                self.stats.record_cas(1);
                if self.tree[current]
                    .compare_exchange(cur_val, candidate, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    new_val = candidate;
                    break;
                }
                self.stats.record_cas_failure(1);
                self.stats
                    .record_cas_failure_at(self.geo.level_of(current) as usize, 1);
            }
            if self.geo.level_of(current) <= upper_level || is_occ_buddy(new_val, child) {
                return;
            }
        }
    }

    /// Bytes currently handed out.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Raw status byte of node `n` (primarily for tests and verification).
    pub fn node_status(&self, n: usize) -> u8 {
        self.tree[n].load(Ordering::Acquire)
    }

    /// Operation statistics (zeros unless the `op-stats` feature is on).
    pub fn op_stats(&self) -> OpStatsSnapshot {
        self.stats.snapshot()
    }
}

impl BuddyBackend for NbbsOneLevel {
    fn name(&self) -> &'static str {
        "1lvl-nb"
    }

    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn alloc(&self, size: usize) -> Option<usize> {
        NbbsOneLevel::alloc(self, size)
    }

    fn dealloc(&self, offset: usize) {
        NbbsOneLevel::dealloc(self, offset)
    }

    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        if offset >= self.geo.total_memory() {
            return Err(FreeError::OutOfRange {
                offset,
                total_memory: self.geo.total_memory(),
            });
        }
        if !offset.is_multiple_of(self.geo.min_size()) {
            return Err(FreeError::Misaligned {
                offset,
                min_size: self.geo.min_size(),
            });
        }
        let unit = self.geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        if n == 0 || !crate::status::is_occupied(self.tree[n].load(Ordering::Acquire)) {
            return Err(FreeError::NotAllocated { offset });
        }
        NbbsOneLevel::dealloc(self, offset);
        Ok(())
    }

    fn allocated_bytes(&self) -> usize {
        NbbsOneLevel::allocated_bytes(self)
    }

    fn stats(&self) -> OpStatsSnapshot {
        self.stats.snapshot()
    }

    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        if offset >= self.geo.total_memory() || !offset.is_multiple_of(self.geo.min_size()) {
            return None;
        }
        let unit = self.geo.unit_of_offset(offset);
        let n = self.index[unit].load(Ordering::Acquire) as usize;
        if n == 0
            || self.geo.offset_of(n) != offset
            || !crate::status::is_occupied(self.tree[n].load(Ordering::Acquire))
        {
            return None;
        }
        Some(self.geo.size_of(n))
    }

    fn occupancy(&self) -> Option<crate::occupancy::OccupancySnapshot> {
        Some(crate::occupancy::occupancy_of(self))
    }

    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        Some(crate::occupancy::free_chunks_of(self, min_size))
    }

    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        self.claim_block(offset, size)
    }
}

impl TreeInspect for NbbsOneLevel {
    fn inspect_geometry(&self) -> &Geometry {
        &self.geo
    }

    fn node_status(&self, n: usize) -> u8 {
        NbbsOneLevel::node_status(self, n)
    }

    fn recorded_node_of_unit(&self, unit: usize) -> Option<usize> {
        let v = self.index[unit].load(Ordering::Acquire) as usize;
        if v == 0 {
            None
        } else {
            Some(v)
        }
    }
}

impl std::fmt::Debug for NbbsOneLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NbbsOneLevel")
            .field("total_memory", &self.geo.total_memory())
            .field("min_size", &self.geo.min_size())
            .field("max_size", &self.geo.max_size())
            .field("allocated_bytes", &self.allocated_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{OCC_LEFT, OCC_RIGHT};
    use std::collections::HashSet;
    use std::sync::Arc;

    fn buddy(total: usize, min: usize, max: usize) -> NbbsOneLevel {
        NbbsOneLevel::new(BuddyConfig::new(total, min, max).unwrap())
    }

    #[test]
    fn claim_block_targets_specific_free_blocks() {
        let b = buddy(1 << 16, 64, 1 << 12);
        assert!(b.claim_block(1 << 12, 1 << 12), "free block is claimable");
        assert!(
            !b.claim_block(1 << 12, 1 << 12),
            "a claimed block refuses a second claim"
        );
        assert!(!b.claim_block(0, 1 << 13), "size above max_size rejected");
        assert!(!b.claim_block(0, 96), "non-chunk size rejected");
        assert!(!b.claim_block(100, 4096), "misaligned offset rejected");
        assert!(!b.claim_block(1 << 16, 4096), "out of range rejected");
        assert_eq!(b.allocated_bytes(), 1 << 12);
        // A claim is an ordinary allocation: overlapping requests fail and
        // the release path is the ordinary dealloc.
        assert!(!b.claim_block(1 << 12, 64));
        b.dealloc(1 << 12);
        assert_eq!(b.allocated_bytes(), 0);
        assert!(b.claim_block(1 << 12, 64), "freed block claimable again");
        b.dealloc(1 << 12);
        // Claims compose with occupancy: every reported free chunk of an
        // idle tree can be claimed, and a live block never appears there.
        let held = b.alloc(4096).unwrap();
        let snap = BuddyBackend::occupancy(&b).unwrap();
        for &(off, size) in &snap.free_chunks {
            assert!(b.scrub_claim(off, size), "chunk ({off}, {size})");
        }
        assert_eq!(b.allocated_bytes(), 1 << 16, "whole region claimed");
        for &(off, _) in &snap.free_chunks {
            b.dealloc(off);
        }
        b.dealloc(held);
        assert_eq!(b.allocated_bytes(), 0);
    }

    fn buddy_first_fit(total: usize, min: usize, max: usize) -> NbbsOneLevel {
        NbbsOneLevel::new(
            BuddyConfig::new(total, min, max)
                .unwrap()
                .with_scan_policy(ScanPolicy::FirstFit),
        )
    }

    #[test]
    fn single_allocation_and_release() {
        let b = buddy(1024, 64, 1024);
        let off = b.alloc(64).unwrap();
        assert!(off < 1024);
        assert_eq!(off % 64, 0);
        assert_eq!(b.allocated_bytes(), 64);
        b.dealloc(off);
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn allocation_grants_power_of_two_at_least_requested() {
        let b = buddy(1 << 16, 8, 1 << 14);
        for req in [1usize, 8, 9, 100, 128, 1000, 1024, 5000] {
            let off = b.alloc(req).unwrap();
            let granted = b.geometry().granted_size(req).unwrap();
            assert!(granted >= req);
            assert_eq!(off % granted, 0, "buddy chunks are naturally aligned");
            b.dealloc(off);
        }
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn rejects_oversized_requests() {
        let b = buddy(1 << 16, 8, 1 << 12);
        assert_eq!(b.alloc((1 << 12) + 1), None);
        assert_eq!(b.alloc(1 << 16), None);
        assert!(b.alloc(1 << 12).is_some());
    }

    #[test]
    fn exhausts_and_recovers() {
        let b = buddy_first_fit(1024, 64, 1024);
        let mut offs = Vec::new();
        for _ in 0..16 {
            offs.push(b.alloc(64).unwrap());
        }
        // All 16 units taken; nothing left at any level.
        assert_eq!(b.alloc(64), None);
        assert_eq!(b.alloc(1024), None);
        assert_eq!(b.allocated_bytes(), 1024);
        for off in offs.drain(..) {
            b.dealloc(off);
        }
        assert_eq!(b.allocated_bytes(), 0);
        // Full coalescing happened implicitly: the whole region is available.
        let whole = b.alloc(1024).unwrap();
        assert_eq!(whole, 0);
        b.dealloc(whole);
    }

    #[test]
    fn offsets_never_overlap_while_live() {
        let b = buddy(1 << 14, 8, 1 << 10);
        let sizes = [8usize, 16, 128, 1024, 8, 256, 64, 32, 512, 8];
        let mut live: Vec<(usize, usize)> = Vec::new();
        for &s in &sizes {
            let off = b.alloc(s).unwrap();
            let granted = b.geometry().granted_size(s).unwrap();
            for &(o, g) in &live {
                let disjoint = off + granted <= o || o + g <= off;
                assert!(
                    disjoint,
                    "overlap: [{off},{}) vs [{o},{})",
                    off + granted,
                    o + g
                );
            }
            live.push((off, granted));
        }
        for (o, _) in live {
            b.dealloc(o);
        }
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn allocating_parent_blocks_children_and_vice_versa() {
        let b = buddy_first_fit(1024, 64, 1024);
        // Take the whole region: nothing else fits.
        let whole = b.alloc(1024).unwrap();
        assert_eq!(b.alloc(64), None);
        assert_eq!(b.alloc(512), None);
        b.dealloc(whole);

        // Take one leaf: the root and the containing half are blocked, the
        // other half is still available.
        let leaf = b.alloc(64).unwrap();
        assert_eq!(b.alloc(1024), None);
        let half = b.alloc(512).unwrap();
        // The 512-byte chunk must not contain the leaf.
        assert!(leaf < half || leaf >= half + 512);
        b.dealloc(leaf);
        b.dealloc(half);
    }

    #[test]
    fn occupancy_bits_propagate_to_max_level() {
        let b = buddy_first_fit(1024, 64, 1024);
        let off = b.alloc(64).unwrap();
        assert_eq!(off, 0);
        let leaf = b.geometry().leaf_of_offset(0);
        assert_eq!(b.node_status(leaf), BUSY);
        // Every proper ancestor of the leaf carries a partial-occupancy mark
        // for the branch the leaf lives in; the leaf here is a left-most
        // descendant so every mark is OCC_LEFT.
        let mut node = leaf >> 1;
        while node >= 1 {
            assert_eq!(b.node_status(node) & (OCC_LEFT | OCC_RIGHT), OCC_LEFT);
            if node == 1 {
                break;
            }
            node >>= 1;
        }
        b.dealloc(off);
        // After the release everything is clean again.
        for n in 1..b.geometry().tree_len() {
            assert_eq!(b.node_status(n), 0, "node {n} not clean");
        }
    }

    #[test]
    fn climb_stops_at_max_level() {
        // max_size = 256 over 1024 bytes → max_level = 2.
        let b = buddy_first_fit(1024, 64, 256);
        let off = b.alloc(64).unwrap();
        let leaf = b.geometry().leaf_of_offset(off);
        // Ancestors above max_level (levels 0 and 1) are never touched.
        assert_eq!(b.node_status(1), 0);
        assert_eq!(b.node_status(2), 0);
        // The ancestor at max_level is marked.
        let mut at_max = leaf;
        while b.geometry().level_of(at_max) > 2 {
            at_max >>= 1;
        }
        assert_ne!(b.node_status(at_max) & (OCC_LEFT | OCC_RIGHT), 0);
        b.dealloc(off);
    }

    #[test]
    fn distinct_addresses_for_all_units() {
        let b = buddy(1 << 12, 64, 1 << 12);
        let units = (1 << 12) / 64;
        let mut seen = HashSet::new();
        let mut offs = Vec::new();
        for _ in 0..units {
            let off = b.alloc(64).unwrap();
            assert!(seen.insert(off), "duplicate offset {off}");
            offs.push(off);
        }
        assert_eq!(seen.len(), units);
        assert_eq!(b.alloc(64), None);
        for off in offs {
            b.dealloc(off);
        }
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let b = buddy_first_fit(4096, 64, 4096);
        let a = b.alloc(1024).unwrap();
        let c = b.alloc(1024).unwrap();
        b.dealloc(a);
        // The freed kilobyte (plus the untouched half) is enough for 2 KiB
        // only after coalescing with its buddy — which is still live, so a
        // 2 KiB request must come from the other half.
        let d = b.alloc(2048).unwrap();
        assert_eq!(d, 2048);
        b.dealloc(c);
        b.dealloc(d);
        // Now the whole region coalesces back.
        let whole = b.alloc(4096).unwrap();
        assert_eq!(whole, 0);
        b.dealloc(whole);
    }

    #[test]
    fn try_dealloc_validates_offsets() {
        let b = buddy(1024, 64, 1024);
        assert!(matches!(
            b.try_dealloc(4096),
            Err(FreeError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.try_dealloc(3),
            Err(FreeError::Misaligned { .. })
        ));
        assert!(matches!(
            b.try_dealloc(128),
            Err(FreeError::NotAllocated { .. })
        ));
        let off = b.alloc(64).unwrap();
        assert!(b.try_dealloc(off).is_ok());
        assert!(matches!(
            b.try_dealloc(off),
            Err(FreeError::NotAllocated { .. })
        ));
    }

    #[test]
    fn try_alloc_reports_reason() {
        use crate::error::AllocError;
        let b = buddy(1024, 64, 512);
        assert!(matches!(
            b.try_alloc(1024),
            Err(AllocError::TooLarge { .. })
        ));
        let a = b.alloc(512).unwrap();
        let c = b.alloc(512).unwrap();
        assert!(matches!(
            b.try_alloc(512),
            Err(AllocError::OutOfMemory { .. })
        ));
        b.dealloc(a);
        b.dealloc(c);
    }

    #[test]
    fn alloc_at_level_matches_order_semantics() {
        let b = buddy_first_fit(1 << 12, 64, 1 << 12);
        let g = *b.geometry();
        // Order 0 = leaves, order depth = whole region in buddy terms; here we
        // address levels directly.
        let leaf_off = b.alloc_at_level(g.depth()).unwrap();
        assert_eq!(g.granted_size(64).unwrap(), 64);
        let half_off = b.alloc_at_level(1).unwrap();
        assert_eq!(half_off % (1 << 11), 0);
        b.dealloc(leaf_off);
        b.dealloc(half_off);
    }

    #[test]
    fn scattered_scan_still_finds_last_free_chunk() {
        let b = buddy(1024, 64, 1024);
        // Fill all but one unit, then make sure a scattered-start scan finds
        // the single remaining hole regardless of where it starts.
        let mut offs: Vec<usize> = (0..16).map(|_| b.alloc(64).unwrap()).collect();
        let hole = offs.pop().unwrap();
        b.dealloc(hole);
        let again = b.alloc(64).unwrap();
        assert_eq!(again, hole);
        b.dealloc(again);
        for off in offs {
            b.dealloc(off);
        }
    }

    #[test]
    fn first_fit_packs_from_the_left() {
        let b = buddy_first_fit(1024, 64, 1024);
        let a = b.alloc(64).unwrap();
        let c = b.alloc(64).unwrap();
        assert_eq!(a, 0);
        assert_eq!(c, 64);
        b.dealloc(a);
        b.dealloc(c);
    }

    #[test]
    fn mixed_size_workload_settles_clean() {
        let b = buddy(1 << 16, 8, 1 << 14);
        let mut live = Vec::new();
        for round in 0..50usize {
            let size = 8usize << (round % 8);
            if let Some(off) = b.alloc(size) {
                live.push(off);
            }
            if round % 3 == 0 {
                if let Some(off) = live.pop() {
                    b.dealloc(off);
                }
            }
        }
        for off in live {
            b.dealloc(off);
        }
        assert_eq!(b.allocated_bytes(), 0);
        for n in 1..b.geometry().tree_len() {
            assert_eq!(b.node_status(n), 0, "node {n} left dirty");
        }
    }

    #[test]
    fn concurrent_allocations_never_overlap() {
        const THREADS: usize = 8;
        const ITERS: usize = 2_000;
        let b = Arc::new(buddy(1 << 16, 8, 1 << 10));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut rng: u64 = 0x1234_5678 ^ (t as u64).wrapping_mul(0x9E37);
                    let mut live: Vec<(usize, usize)> = Vec::new();
                    let mut claimed: Vec<(usize, usize)> = Vec::new();
                    for _ in 0..ITERS {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let size = 8usize << ((rng >> 60) as usize % 8);
                        if rng & 1 == 0 || live.is_empty() {
                            if let Some(off) = b.alloc(size) {
                                let granted = b.geometry().granted_size(size).unwrap();
                                live.push((off, granted));
                                claimed.push((off, granted));
                            }
                        } else {
                            let (off, _) = live.swap_remove((rng >> 32) as usize % live.len());
                            b.dealloc(off);
                        }
                    }
                    for (off, _) in live.drain(..) {
                        b.dealloc(off);
                    }
                    claimed
                })
            })
            .collect();
        let _all: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Quiescent state: tree fully clean, accounting at zero.
        assert_eq!(b.allocated_bytes(), 0);
        for n in 1..b.geometry().tree_len() {
            assert_eq!(b.node_status(n), 0, "node {n} left dirty");
        }
    }

    #[test]
    fn concurrent_same_size_contention_settles_clean() {
        const THREADS: usize = 8;
        let b = Arc::new(buddy(1 << 12, 64, 1 << 12));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..3_000 {
                        if let Some(off) = b.alloc(64) {
                            b.dealloc(off);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.allocated_bytes(), 0);
        for n in 1..b.geometry().tree_len() {
            assert_eq!(b.node_status(n), 0);
        }
    }

    #[test]
    fn concurrent_producer_consumer_frees() {
        // One group of threads allocates and hands offsets to another group
        // that frees them (the Larson pattern) — exercises remote frees.
        use std::sync::mpsc;
        const PAIRS: usize = 4;
        const ITERS: usize = 2_000;
        let b = Arc::new(buddy(1 << 14, 8, 1 << 10));
        let mut handles = Vec::new();
        for _ in 0..PAIRS {
            let (tx, rx) = mpsc::channel::<usize>();
            let producer = {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        let size = 8usize << (i % 6);
                        loop {
                            if let Some(off) = b.alloc(size) {
                                tx.send(off).unwrap();
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let consumer = {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..ITERS {
                        let off = rx.recv().unwrap();
                        b.dealloc(off);
                    }
                })
            };
            handles.push(producer);
            handles.push(consumer);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.allocated_bytes(), 0);
        for n in 1..b.geometry().tree_len() {
            assert_eq!(b.node_status(n), 0);
        }
    }

    #[test]
    fn trait_object_usage() {
        let b: Box<dyn BuddyBackend> = Box::new(buddy(1024, 64, 1024));
        assert_eq!(b.name(), "1lvl-nb");
        assert_eq!(b.total_memory(), 1024);
        assert_eq!(b.min_size(), 64);
        let off = b.alloc(200).unwrap();
        assert_eq!(b.allocated_bytes(), 256);
        b.dealloc(off);
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn granted_size_of_live_tracks_allocations() {
        let b = buddy(1 << 14, 8, 1 << 10);
        assert_eq!(b.granted_size_of_live(0), None);
        let off = b.alloc(100).unwrap();
        assert_eq!(BuddyBackend::granted_size_of_live(&b, off), Some(128));
        // Offsets inside the chunk (not its start) are not live starts.
        assert_eq!(b.granted_size_of_live(off + 8), None);
        // Out-of-range and misaligned offsets are rejected.
        assert_eq!(b.granted_size_of_live(1 << 14), None);
        assert_eq!(b.granted_size_of_live(3), None);
        b.dealloc(off);
        assert_eq!(BuddyBackend::granted_size_of_live(&b, off), None);
    }

    #[test]
    fn debug_output_mentions_sizes() {
        let b = buddy(2048, 64, 1024);
        let s = format!("{b:?}");
        assert!(s.contains("2048"));
        assert!(s.contains("1024"));
    }

    #[cfg(feature = "op-stats")]
    #[test]
    fn op_stats_count_cas_when_enabled() {
        let b = buddy(1024, 64, 1024);
        let off = b.alloc(64).unwrap();
        b.dealloc(off);
        let s = b.op_stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.frees, 1);
        assert!(s.cas_ops > 4, "alloc alone needs depth CAS ops: {s}");
    }
}
