//! [`ElasticSet`]: a chain of buddy instances that grows under OOM
//! pressure and retires drained instances at trough.
//!
//! The `nbbs-numa` crate packs N per-node buddy instances behind one
//! widened [`BuddyBackend`] by encoding the node index in the high offset
//! bits.  This module generalizes "node" to *dynamically added region*: the
//! set reserves the widened offset space up front (cheap — the backing
//! [`crate::BuddyRegion`] is a demand-zero mapping, so slots that were
//! never built cost no physical memory), builds only the first region
//! eagerly, and
//!
//! * **grows** — builds or reactivates the next region — when allocation
//!   has failed across every active region for a few consecutive requests
//!   (sustained pressure, not a single unlucky race), then retries;
//! * **retires** a drained region at trough: an active region other than
//!   the first whose byte counter reads zero is claimed whole through the
//!   ordinary allocation protocol (the claims are a liveness barrier — any
//!   concurrent allocation makes the claim fail and the retirement abort),
//!   flipped to dormant, and the claims freed back.  A dormant region
//!   serves no further allocations, so its whole span stays free and the
//!   decommit scrubber returns its pages to the kernel on the next pass.
//!
//! Retirement is reversible: renewed pressure reactivates dormant regions
//! (their backing recommits lazily on first touch) before building new
//! ones.  Offsets pack exactly like [`Geometry::widened`] describes —
//! `global = (slot << shift) | local` — so releases route by arithmetic.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::error::{AllocError, FreeError};
use crate::stats::{CacheStatsSnapshot, OpStatsSnapshot};
use crate::traits::BuddyBackend;
use crate::Geometry;

/// Slot states: never built / serving allocations / drained and parked.
const EMPTY: u8 = 0;
const ACTIVE: u8 = 1;
const DORMANT: u8 = 2;

/// One region slot of the chain.
struct Slot<A> {
    state: AtomicU8,
    backend: OnceLock<A>,
}

/// Point-in-time growth/retirement telemetry of an [`ElasticSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElasticStatsSnapshot {
    /// Regions currently serving allocations.
    pub active_regions: usize,
    /// Regions built so far (active + dormant).
    pub built_regions: usize,
    /// Maximum regions the reserved offset space can hold.
    pub max_regions: usize,
    /// New regions built under pressure (cumulative).
    pub grows: u64,
    /// Regions retired to dormant at trough (cumulative).
    pub retires: u64,
    /// Dormant regions reactivated under pressure (cumulative).
    pub reactivations: u64,
}

/// A chain of identically-configured buddy instances behind one widened
/// [`BuddyBackend`], growing under sustained OOM pressure and retiring
/// drained regions at trough.
///
/// See the [module docs](self) for the life cycle.
///
/// ```
/// use nbbs::{BuddyBackend, BuddyConfig, ElasticSet, NbbsFourLevel};
///
/// let config = BuddyConfig::new(1 << 16, 64, 1 << 12).unwrap();
/// let set = ElasticSet::new(4, move |_slot| NbbsFourLevel::new(config))
///     .with_grow_threshold(1); // grow on the first miss (default: 2)
/// assert_eq!(set.elastic_stats().built_regions, 1);
///
/// // Fill region 0 and keep asking: the set maps region 1 and serves on.
/// let mut held = Vec::new();
/// while let Some(off) = set.alloc(1 << 12) {
///     held.push(off);
/// }
/// assert!(held.len() >= 32, "grew past the first region");
/// for off in held {
///     set.dealloc(off);
/// }
/// set.retire_idle();
/// assert_eq!(set.elastic_stats().active_regions, 1);
/// ```
pub struct ElasticSet<A: BuddyBackend> {
    slots: Box<[Slot<A>]>,
    builder: Box<dyn Fn(usize) -> A + Send + Sync>,
    /// Widened geometry spanning `max_regions.next_power_of_two()` slots.
    geometry: Geometry,
    /// `log2(per-region total)`: the packing shift.
    shift: u32,
    /// `per-region total - 1`: the local-offset mask.
    mask: usize,
    /// Consecutive allocations that failed on every active region.
    oom_streak: AtomicUsize,
    /// Failures the streak must reach before the set grows.
    grow_threshold: usize,
    grows: AtomicU64,
    retires: AtomicU64,
    reactivations: AtomicU64,
}

impl<A: BuddyBackend> ElasticSet<A> {
    /// Default consecutive-failure count before the set grows.
    pub const DEFAULT_GROW_THRESHOLD: usize = 2;

    /// Builds a set that can hold up to `max_regions` instances produced by
    /// `builder` (called with the slot index).  Slot 0 is built eagerly and
    /// never retired; the rest are built on demand under pressure.
    ///
    /// # Panics
    ///
    /// Panics if `max_regions` is zero or the widened geometry would exceed
    /// the supported tree depth.
    pub fn new(max_regions: usize, builder: impl Fn(usize) -> A + Send + Sync + 'static) -> Self {
        assert!(max_regions > 0, "need at least one region");
        let first = builder(0);
        let per_region = *first.geometry();
        let geometry = per_region
            .widened(max_regions)
            .expect("widened geometry within the supported depth");
        let slots: Box<[Slot<A>]> = (0..max_regions)
            .map(|_| Slot {
                state: AtomicU8::new(EMPTY),
                backend: OnceLock::new(),
            })
            .collect();
        let _ = slots[0].backend.set(first);
        slots[0].state.store(ACTIVE, Ordering::Release);
        ElasticSet {
            geometry,
            shift: per_region.widening_shift(),
            mask: per_region.total_memory() - 1,
            oom_streak: AtomicUsize::new(0),
            grow_threshold: Self::DEFAULT_GROW_THRESHOLD,
            grows: AtomicU64::new(0),
            retires: AtomicU64::new(0),
            reactivations: AtomicU64::new(0),
            slots,
            builder: Box::new(builder),
        }
    }

    /// Overrides how many consecutive all-region allocation failures it
    /// takes before the set grows (clamped to at least 1).  The default
    /// [`ElasticSet::DEFAULT_GROW_THRESHOLD`] absorbs a single unlucky
    /// race without mapping a new region.
    #[must_use]
    pub fn with_grow_threshold(mut self, threshold: usize) -> Self {
        self.grow_threshold = threshold.max(1);
        self
    }

    /// Bytes managed by each single region.
    pub fn region_memory(&self) -> usize {
        self.mask + 1
    }

    /// Maximum regions the reserved offset space can hold.
    pub fn max_regions(&self) -> usize {
        self.slots.len()
    }

    /// Access to a built region's instance (`None` for unbuilt slots).
    pub fn region(&self, i: usize) -> Option<&A> {
        self.slots.get(i)?.backend.get()
    }

    /// Growth/retirement counters and the current slot census.
    pub fn elastic_stats(&self) -> ElasticStatsSnapshot {
        let mut active = 0;
        let mut built = 0;
        for slot in &self.slots {
            if slot.backend.get().is_some() {
                built += 1;
            }
            if slot.state.load(Ordering::Acquire) == ACTIVE {
                active += 1;
            }
        }
        ElasticStatsSnapshot {
            active_regions: active,
            built_regions: built,
            max_regions: self.slots.len(),
            grows: self.grows.load(Ordering::Relaxed),
            retires: self.retires.load(Ordering::Relaxed),
            reactivations: self.reactivations.load(Ordering::Relaxed),
        }
    }

    /// Packs `(slot, local offset)` into a global offset.
    #[inline]
    fn pack(&self, slot: usize, local: usize) -> usize {
        (slot << self.shift) | local
    }

    /// Splits a global offset into `(slot, local offset)`.
    #[inline]
    fn split(&self, global: usize) -> (usize, usize) {
        (global >> self.shift, global & self.mask)
    }

    /// One allocation attempt across the currently active regions.
    fn alloc_once(&self, size: usize) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.state.load(Ordering::Acquire) != ACTIVE {
                continue;
            }
            let Some(backend) = slot.backend.get() else {
                continue;
            };
            if let Some(local) = backend.alloc(size) {
                return Some(self.pack(i, local));
            }
        }
        None
    }

    /// Brings one more region into service: reactivates the first dormant
    /// slot if there is one, otherwise builds the next empty slot.  Returns
    /// `false` when every slot is already active.
    pub fn grow(&self) -> bool {
        // Reactivate before building: dormant regions are already mapped
        // (if mostly decommitted) and strictly cheaper than a new build.
        for slot in &self.slots {
            if slot
                .state
                .compare_exchange(DORMANT, ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.reactivations.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.state.load(Ordering::Acquire) != EMPTY {
                continue;
            }
            // Racing growers both reach get_or_init; only one builds, and
            // the single EMPTY→ACTIVE transition decides who announced it.
            slot.backend.get_or_init(|| (self.builder)(i));
            if slot
                .state
                .compare_exchange(EMPTY, ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.grows.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Retires drained regions: every active region other than the first
    /// whose byte counter reads zero is claimed whole through the ordinary
    /// allocation protocol (any concurrent allocation fails the claim and
    /// aborts the retirement), flipped dormant, and released again — fully
    /// free, so the next scrub pass decommits its span.  Returns how many
    /// regions were retired.
    pub fn retire_idle(&self) -> usize {
        let max = self.geometry.max_size();
        let blocks_per_region = self.region_memory() / max;
        let mut retired = 0;
        for slot in self.slots.iter().skip(1) {
            if slot.state.load(Ordering::Acquire) != ACTIVE {
                continue;
            }
            let Some(backend) = slot.backend.get() else {
                continue;
            };
            if backend.allocated_bytes() != 0 {
                continue;
            }
            // Liveness barrier: own the whole span before parking it.
            let mut claimed = Vec::with_capacity(blocks_per_region);
            for b in 0..blocks_per_region {
                let local = b * max;
                if backend.scrub_claim(local, max) {
                    claimed.push(local);
                } else {
                    break;
                }
            }
            if claimed.len() == blocks_per_region
                && slot
                    .state
                    .compare_exchange(ACTIVE, DORMANT, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.retires.fetch_add(1, Ordering::Relaxed);
                retired += 1;
            }
            for local in claimed {
                backend.scrub_dealloc(local);
            }
        }
        retired
    }
}

impl<A: BuddyBackend> BuddyBackend for ElasticSet<A> {
    fn name(&self) -> &'static str {
        "elastic"
    }

    /// The **widened** geometry: `max_regions.next_power_of_two()`
    /// per-region spans, per-region `min_size`/`max_size`.
    fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn alloc(&self, size: usize) -> Option<usize> {
        if let Some(off) = self.alloc_once(size) {
            self.oom_streak.store(0, Ordering::Relaxed);
            return Some(off);
        }
        // Sustained pressure (not a single unlucky race): grow and retry.
        let streak = self.oom_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.grow_threshold && self.grow() {
            self.oom_streak.store(0, Ordering::Relaxed);
            return self.alloc_once(size);
        }
        None
    }

    fn dealloc(&self, offset: usize) {
        let (slot, local) = self.split(offset);
        self.slots[slot]
            .backend
            .get()
            .expect("free into an unbuilt region")
            .dealloc(local);
    }

    fn try_alloc(&self, size: usize) -> Result<usize, AllocError> {
        if size > self.max_size() {
            return Err(AllocError::TooLarge {
                requested: size,
                max_size: self.max_size(),
            });
        }
        self.alloc(size)
            .ok_or(AllocError::OutOfMemory { requested: size })
    }

    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        let (slot, local) = self.split(offset);
        match self.slots.get(slot).and_then(|s| s.backend.get()) {
            Some(backend) => backend.try_dealloc(local),
            // Unbuilt slots (and the phantom widening tail) never produced
            // an offset; report the logical span.
            None => Err(FreeError::OutOfRange {
                offset,
                total_memory: self.total_memory(),
            }),
        }
    }

    /// The full reservable span, `max_regions << shift`.  Unlike a NUMA
    /// node set — whose instances all exist and are all backed — the whole
    /// point of the elastic set is that this span is *reserved, not
    /// committed*: a demand-zero [`crate::BuddyRegion`] backs unbuilt and
    /// dormant slots for free.
    fn total_memory(&self) -> usize {
        self.slots.len() << self.shift
    }

    fn allocated_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.backend.get())
            .map(|b| b.allocated_bytes())
            .sum()
    }

    fn stats(&self) -> OpStatsSnapshot {
        let mut acc = OpStatsSnapshot::default();
        for backend in self.slots.iter().filter_map(|s| s.backend.get()) {
            acc.merge(&backend.stats());
        }
        acc
    }

    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        let (slot, local) = self.split(offset);
        self.slots
            .get(slot)?
            .backend
            .get()?
            .granted_size_of_live(local)
    }

    fn granted_size_for(&self, size: usize) -> Option<usize> {
        self.slots[0]
            .backend
            .get()
            .expect("slot 0 is built eagerly")
            .granted_size_for(size)
    }

    fn grant_alignment_for(&self, size: usize) -> Option<usize> {
        // Regions are homogeneous, so slot 0 speaks for all — but a packed
        // offset's *global* alignment is also capped by the region stride.
        let local = self.granted_size_for(size)?;
        Some(local.min(1 << self.shift))
    }

    fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        let mut merged: Option<CacheStatsSnapshot> = None;
        for backend in self.slots.iter().filter_map(|s| s.backend.get()) {
            if let Some(s) = backend.cache_stats() {
                merged.get_or_insert_with(Default::default).merge(&s);
            }
        }
        merged
    }

    fn drain_cache(&self) {
        for backend in self.slots.iter().filter_map(|s| s.backend.get()) {
            backend.drain_cache();
        }
    }

    /// Merged over every *built* slot — dormant regions included, so the
    /// decommit scrubber sees (and can release) their fully free spans.
    fn occupancy(&self) -> Option<crate::occupancy::OccupancySnapshot> {
        let mut merged: Option<crate::occupancy::OccupancySnapshot> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(backend) = slot.backend.get() else {
                continue;
            };
            if let Some(mut s) = backend.occupancy() {
                s.shift_free_chunks(i << self.shift);
                match &mut merged {
                    Some(acc) => acc.merge(&s),
                    None => merged = Some(s),
                }
            }
        }
        merged
    }

    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        let mut merged: Option<Vec<(usize, usize)>> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(backend) = slot.backend.get() else {
                continue;
            };
            if let Some(chunks) = backend.free_chunks(min_size) {
                let base = i << self.shift;
                merged
                    .get_or_insert_with(Vec::new)
                    .extend(chunks.into_iter().map(|(off, size)| (base | off, size)));
            }
        }
        merged
    }

    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        let (slot, local) = self.split(offset);
        match self.slots.get(slot).and_then(|s| s.backend.get()) {
            Some(backend) => backend.scrub_claim(local, size),
            None => false,
        }
    }

    fn scrub_dealloc(&self, offset: usize) {
        let (slot, local) = self.split(offset);
        self.slots[slot]
            .backend
            .get()
            .expect("scrub release into an unbuilt region")
            .scrub_dealloc(local);
    }

    /// Trims the built regions, then retires drained ones — the scrubber's
    /// periodic call is what drives the chain back down at trough.
    fn trim_empty_pages(&self) -> usize {
        let trimmed = self
            .slots
            .iter()
            .filter_map(|s| s.backend.get())
            .map(|b| b.trim_empty_pages())
            .sum();
        self.retire_idle();
        trimmed
    }
}

impl<A: BuddyBackend + std::fmt::Debug> std::fmt::Debug for ElasticSet<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticSet")
            .field("max_regions", &self.slots.len())
            .field("stats", &self.elastic_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuddyConfig, NbbsOneLevel};

    fn elastic(regions: usize, per_region: usize) -> ElasticSet<NbbsOneLevel> {
        let config = BuddyConfig::new(per_region, 64, per_region.min(1 << 12)).unwrap();
        ElasticSet::new(regions, move |_| NbbsOneLevel::new(config)).with_grow_threshold(1)
    }

    #[test]
    fn starts_with_one_region_and_grows_under_pressure() {
        let s = elastic(4, 4096);
        assert_eq!(s.total_memory(), 4 * 4096);
        assert_eq!(s.region_memory(), 4096);
        assert_eq!(s.elastic_stats().built_regions, 1);
        assert!(s.region(1).is_none(), "slot 1 unbuilt at rest");

        let mut held = Vec::new();
        for _ in 0..4 {
            held.push(s.alloc(4096).expect("the set grows to serve"));
        }
        assert!(s.alloc(64).is_none(), "every slot active and full");
        let stats = s.elastic_stats();
        assert_eq!(stats.built_regions, 4);
        assert_eq!(stats.active_regions, 4);
        assert_eq!(stats.grows, 3);
        // One offset per region: pack/split round-trips by arithmetic.
        let owners: std::collections::HashSet<usize> = held.iter().map(|&o| o >> s.shift).collect();
        assert_eq!(owners.len(), 4);
        for off in held {
            s.dealloc(off);
        }
        assert_eq!(s.allocated_bytes(), 0);
    }

    #[test]
    fn growth_threshold_absorbs_single_failures() {
        let config = BuddyConfig::new(4096, 64, 4096).unwrap();
        let s = ElasticSet::new(2, move |_| NbbsOneLevel::new(config)); // threshold 2
        let a = s.alloc(4096).unwrap();
        assert!(
            s.alloc(4096).is_none(),
            "first failure only bumps the streak"
        );
        assert_eq!(s.elastic_stats().built_regions, 1);
        assert!(s.alloc(4096).is_some(), "second failure grows");
        assert_eq!(s.elastic_stats().grows, 1);
        s.dealloc(a);
    }

    #[test]
    fn retirement_parks_drained_regions_and_reactivates() {
        let s = elastic(3, 4096);
        let offs: Vec<usize> = (0..3).map(|_| s.alloc(4096).unwrap()).collect();
        for off in &offs {
            s.dealloc(*off);
        }
        assert_eq!(s.retire_idle(), 2, "both non-first regions retire");
        let stats = s.elastic_stats();
        assert_eq!(stats.active_regions, 1);
        assert_eq!(stats.built_regions, 3, "dormant regions stay built");
        assert_eq!(stats.retires, 2);
        // Dormant spans are fully free and visible to the scrubber.
        let snap = BuddyBackend::occupancy(&s).unwrap();
        assert_eq!(
            snap.free_chunks.iter().map(|&(_, sz)| sz).sum::<usize>(),
            3 * 4096
        );

        // Renewed pressure reactivates before building.
        let offs: Vec<usize> = (0..3).map(|_| s.alloc(4096).unwrap()).collect();
        let stats = s.elastic_stats();
        assert_eq!(stats.reactivations, 2);
        assert_eq!(stats.grows, 2, "no new builds needed");
        for off in offs {
            s.dealloc(off);
        }
    }

    #[test]
    fn retirement_aborts_when_a_region_is_live() {
        let s = elastic(2, 4096);
        let a = s.alloc(4096).unwrap();
        let b = s.alloc(64).unwrap();
        assert_ne!(a >> s.shift, b >> s.shift);
        s.dealloc(a);
        // Region 1 holds the 64-byte chunk: allocated_bytes != 0, no retire.
        assert_eq!(s.retire_idle(), 0);
        assert_eq!(s.elastic_stats().active_regions, 2);
        s.dealloc(b);
        assert_eq!(s.retire_idle(), 1);
        s.alloc(64).unwrap();
        // First region is never retired, whoever is idle.
        assert_eq!(s.retire_idle(), 0);
    }

    #[test]
    fn scrub_claims_route_to_the_owning_region() {
        let s = elastic(2, 4096);
        let a = s.alloc(4096).unwrap();
        let b = s.alloc(4096).unwrap();
        s.dealloc(a);
        s.dealloc(b);
        let snap = BuddyBackend::occupancy(&s).unwrap();
        assert_eq!(snap.free_chunks.len(), 2);
        for &(off, size) in &snap.free_chunks {
            assert!(s.scrub_claim(off, size), "chunk ({off}, {size})");
        }
        assert_eq!(s.allocated_bytes(), 2 * 4096);
        for &(off, _) in &snap.free_chunks {
            s.scrub_dealloc(off);
        }
        assert_eq!(s.allocated_bytes(), 0);
        assert!(!s.scrub_claim(5 << 12, 4096), "unbuilt slot refuses claims");
    }

    #[test]
    fn invalid_frees_are_rejected_not_routed() {
        let s = elastic(2, 4096);
        assert!(
            matches!(s.try_dealloc(1 << 12), Err(FreeError::OutOfRange { .. })),
            "unbuilt slot"
        );
        assert!(
            matches!(s.try_dealloc(100 << 12), Err(FreeError::OutOfRange { .. })),
            "beyond the widened span"
        );
        let off = s.alloc(64).unwrap();
        assert!(s.try_dealloc(off).is_ok());
    }

    #[test]
    fn concurrent_churn_grows_safely_and_returns_every_byte() {
        let s = std::sync::Arc::new(elastic(4, 1 << 14));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut live = Vec::new();
                    for i in 0..2_000usize {
                        let size = 64usize << ((i + t) % 5);
                        if let Some(off) = s.alloc(size) {
                            live.push(off);
                        }
                        if live.len() > 24 {
                            live.rotate_left(1);
                            s.dealloc(live.pop().unwrap());
                        }
                    }
                    for off in live {
                        s.dealloc(off);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocated_bytes(), 0);
        for i in 0..s.max_regions() {
            if let Some(region) = s.region(i) {
                crate::verify::audit_empty(region).assert_clean();
            }
        }
        // Trough: everything built beyond slot 0 retires cleanly.
        let built = s.elastic_stats().built_regions;
        assert_eq!(s.retire_idle(), built - 1);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_panics() {
        let config = BuddyConfig::new(4096, 64, 4096).unwrap();
        let _ = ElasticSet::new(0, move |_| NbbsOneLevel::new(config));
    }
}
