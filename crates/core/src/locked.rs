//! Spin-locked wrappers around the non-blocking data structures
//! (`1lvl-sl` and `4lvl-sl` in the paper's evaluation).
//!
//! §IV: *“we include data related to our own data structure with the variant
//! that, rather than using RMW instructions to make it non-blocking, we
//! synchronize the accesses in a blocking manner by using a unique (global)
//! spin-lock.”*  These configurations isolate the benefit of the non-blocking
//! coordination from the benefit of the tree layout itself: the wrapped
//! allocator is byte-for-byte the same, but every operation first acquires a
//! single process-wide spin lock, so concurrent operations serialize exactly
//! like in a classic lock-protected buddy system.

use nbbs_sync::SpinLock;

use crate::error::FreeError;
use crate::geometry::Geometry;
use crate::stats::OpStatsSnapshot;
use crate::traits::BuddyBackend;
use crate::{NbbsFourLevel, NbbsOneLevel};

/// A buddy allocator whose every operation is serialized by one global
/// spin lock.
///
/// The generic parameter is the wrapped backend; the provided aliases
/// [`LockedOneLevel`] and [`LockedFourLevel`] correspond to the paper's
/// `1lvl-sl` and `4lvl-sl` configurations.
pub struct LockedBuddy<A> {
    inner: A,
    lock: SpinLock<()>,
    name: &'static str,
}

/// `1lvl-sl`: the 1-level tree behind a global spin lock.
pub type LockedOneLevel = LockedBuddy<NbbsOneLevel>;
/// `4lvl-sl`: the 4-level bunch tree behind a global spin lock.
pub type LockedFourLevel = LockedBuddy<NbbsFourLevel>;

impl<A: BuddyBackend> LockedBuddy<A> {
    /// Wraps `inner`, serializing all of its operations behind one spin lock.
    pub fn with_name(inner: A, name: &'static str) -> Self {
        LockedBuddy {
            inner,
            lock: SpinLock::new(()),
            name,
        }
    }

    /// Read access to the wrapped allocator (does not take the lock; only
    /// safe for inspection of counters and geometry).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Number of lock acquisitions that found the lock already held.
    pub fn contended_acquisitions(&self) -> u64 {
        self.lock.contended_acquisitions()
    }
}

impl LockedBuddy<NbbsOneLevel> {
    /// Creates a `1lvl-sl` allocator.
    pub fn new(inner: NbbsOneLevel) -> Self {
        Self::with_name(inner, "1lvl-sl")
    }
}

impl LockedBuddy<NbbsFourLevel> {
    /// Creates a `4lvl-sl` allocator.
    pub fn new(inner: NbbsFourLevel) -> Self {
        Self::with_name(inner, "4lvl-sl")
    }
}

impl<A: BuddyBackend> BuddyBackend for LockedBuddy<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn geometry(&self) -> &Geometry {
        self.inner.geometry()
    }

    fn alloc(&self, size: usize) -> Option<usize> {
        let _guard = self.lock.lock();
        self.inner.alloc(size)
    }

    fn dealloc(&self, offset: usize) {
        let _guard = self.lock.lock();
        self.inner.dealloc(offset);
    }

    fn try_dealloc(&self, offset: usize) -> Result<(), FreeError> {
        let _guard = self.lock.lock();
        self.inner.try_dealloc(offset)
    }

    fn allocated_bytes(&self) -> usize {
        self.inner.allocated_bytes()
    }

    fn stats(&self) -> OpStatsSnapshot {
        self.inner.stats()
    }

    fn granted_size_of_live(&self, offset: usize) -> Option<usize> {
        // Atomic metadata reads only; no need to serialize with mutators.
        self.inner.granted_size_of_live(offset)
    }

    fn cache_stats(&self) -> Option<crate::stats::CacheStatsSnapshot> {
        self.inner.cache_stats()
    }

    fn drain_cache(&self) {
        let _guard = self.lock.lock();
        self.inner.drain_cache();
    }

    fn occupancy(&self) -> Option<crate::occupancy::OccupancySnapshot> {
        // Atomic metadata reads only, same contract as the snapshots.
        self.inner.occupancy()
    }

    fn free_chunks(&self, min_size: usize) -> Option<Vec<(usize, usize)>> {
        self.inner.free_chunks(min_size)
    }

    fn scrub_claim(&self, offset: usize, size: usize) -> bool {
        let _guard = self.lock.lock();
        self.inner.scrub_claim(offset, size)
    }

    fn scrub_dealloc(&self, offset: usize) {
        let _guard = self.lock.lock();
        self.inner.scrub_dealloc(offset)
    }

    fn trim_empty_pages(&self) -> usize {
        let _guard = self.lock.lock();
        self.inner.trim_empty_pages()
    }
}

impl<A: BuddyBackend + std::fmt::Debug> std::fmt::Debug for LockedBuddy<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedBuddy")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuddyConfig;
    use std::sync::Arc;

    fn cfg(total: usize, min: usize, max: usize) -> BuddyConfig {
        BuddyConfig::new(total, min, max).unwrap()
    }

    #[test]
    fn names_match_paper_configurations() {
        let one = LockedOneLevel::new(NbbsOneLevel::new(cfg(1024, 64, 1024)));
        let four = LockedFourLevel::new(NbbsFourLevel::new(cfg(1024, 64, 1024)));
        assert_eq!(one.name(), "1lvl-sl");
        assert_eq!(four.name(), "4lvl-sl");
    }

    #[test]
    fn behaves_like_wrapped_allocator() {
        let b = LockedOneLevel::new(NbbsOneLevel::new(cfg(4096, 64, 4096)));
        let a = b.alloc(64).unwrap();
        let c = b.alloc(1000).unwrap();
        assert_eq!(b.allocated_bytes(), 64 + 1024);
        assert!(b.try_dealloc(a).is_ok());
        b.dealloc(c);
        assert_eq!(b.allocated_bytes(), 0);
        assert_eq!(b.alloc(8192), None);
    }

    #[test]
    fn concurrent_usage_is_safe_and_conserving() {
        const THREADS: usize = 8;
        const ITERS: usize = 1_000;
        let b = Arc::new(LockedFourLevel::new(NbbsFourLevel::new(cfg(
            1 << 14,
            8,
            1 << 10,
        ))));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut live = Vec::new();
                    for i in 0..ITERS {
                        let size = 8usize << ((i + t) % 7);
                        if let Some(off) = b.alloc(size) {
                            live.push(off);
                        }
                        if live.len() > 32 {
                            b.dealloc(live.swap_remove(0));
                        }
                    }
                    for off in live {
                        b.dealloc(off);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn inner_access_and_debug() {
        let b = LockedOneLevel::new(NbbsOneLevel::new(cfg(1024, 64, 1024)));
        assert_eq!(b.inner().geometry().total_memory(), 1024);
        assert!(format!("{b:?}").contains("1lvl-sl"));
        assert_eq!(b.contended_acquisitions(), 0);
    }
}
