//! Operation statistics.
//!
//! The 4-level optimization exists to *reduce the number of RMW instructions
//! on the critical path* (§III-D).  To be able to demonstrate that reduction
//! directly (ablation A2 in DESIGN.md) the allocators can count, per
//! instance:
//!
//! * successful allocations and releases,
//! * failed allocations (no free chunk found),
//! * CAS instructions issued and CAS failures (retries),
//! * nodes skipped during the level scan because they were busy.
//!
//! Counting on the hot path costs one relaxed `fetch_add` per event; to keep
//! the headline benchmarks honest the increments are compiled in only when
//! the `op-stats` feature is enabled.  Without the feature every recording
//! method is an empty `#[inline]` stub and [`OpStats::snapshot`] returns
//! zeros.

use std::fmt;
use std::sync::atomic::AtomicU64;
#[cfg(feature = "op-stats")]
use std::sync::atomic::Ordering;

/// Number of tree levels the per-level CAS-failure heatmap resolves.
///
/// Deeper trees clamp their tail levels into the last bin; the paper's
/// configurations (64 MiB / 8 B units ⇒ 24 levels would overflow — but CAS
/// traffic concentrates near the leaves, and the reports label the last
/// bin `N+`).
pub const CAS_LEVELS: usize = 16;

/// Cumulative operation counters for one allocator instance.
#[derive(Debug, Default)]
#[cfg_attr(not(feature = "op-stats"), allow(dead_code))]
pub struct OpStats {
    allocs: AtomicU64,
    frees: AtomicU64,
    failed_allocs: AtomicU64,
    cas_ops: AtomicU64,
    cas_failures: AtomicU64,
    nodes_skipped: AtomicU64,
    cas_failures_by_level: [AtomicU64; CAS_LEVELS],
}

/// A point-in-time copy of [`OpStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStatsSnapshot {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful releases.
    pub frees: u64,
    /// Allocations that failed because no suitable free chunk was found.
    pub failed_allocs: u64,
    /// CAS (RMW) instructions issued on the metadata.
    pub cas_ops: u64,
    /// CAS instructions that failed and forced a retry or an abort.
    pub cas_failures: u64,
    /// Candidate nodes skipped during level scans because they were busy.
    pub nodes_skipped: u64,
    /// CAS failures broken down by the tree level of the contended node
    /// (level 0 = root; levels ≥ [`CAS_LEVELS`]−1 share the last bin) —
    /// the contention heatmap of the fig13 cache table.  All zeros unless
    /// the `op-stats` feature is enabled *and* the backend reports levels
    /// (the tree allocators do; baselines leave it empty).
    pub cas_failures_by_level: [u64; CAS_LEVELS],
}

impl OpStatsSnapshot {
    /// Average number of CAS instructions per completed operation
    /// (allocation or release), or 0 if nothing completed.
    pub fn cas_per_op(&self) -> f64 {
        let ops = self.allocs + self.frees;
        if ops == 0 {
            0.0
        } else {
            self.cas_ops as f64 / ops as f64
        }
    }

    /// Fraction of CAS instructions that failed.
    pub fn cas_failure_rate(&self) -> f64 {
        if self.cas_ops == 0 {
            0.0
        } else {
            self.cas_failures as f64 / self.cas_ops as f64
        }
    }

    /// Accumulates `other` into `self`, counter by counter — the
    /// [`CacheStatsSnapshot::merge`] analogue multi-instance deployments
    /// use to report one aggregated view across per-node backends.
    pub fn merge(&mut self, other: &OpStatsSnapshot) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.failed_allocs += other.failed_allocs;
        self.cas_ops += other.cas_ops;
        self.cas_failures += other.cas_failures;
        self.nodes_skipped += other.nodes_skipped;
        for (a, b) in self
            .cas_failures_by_level
            .iter_mut()
            .zip(other.cas_failures_by_level.iter())
        {
            *a += *b;
        }
    }

    /// Whether any per-level CAS-failure bin is non-zero (reports hide the
    /// heatmap column block otherwise).
    pub fn has_level_contention(&self) -> bool {
        self.cas_failures_by_level.iter().any(|&c| c != 0)
    }
}

impl fmt::Display for OpStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} frees={} failed={} cas={} cas_failed={} skipped={} cas/op={:.2}",
            self.allocs,
            self.frees,
            self.failed_allocs,
            self.cas_ops,
            self.cas_failures,
            self.nodes_skipped,
            self.cas_per_op()
        )
    }
}

/// A point-in-time copy of the counters of a caching front-end layered over
/// a backend allocator (e.g. the per-thread magazine cache in `nbbs-cache`).
///
/// Defined here, next to [`OpStatsSnapshot`], so that the
/// [`crate::BuddyBackend::cache_stats`] hook can expose cache behaviour
/// through `dyn BuddyBackend` without the core crate depending on any cache
/// implementation.  Plain backends return `None` from that hook; wrappers
/// fill this in.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Allocations served from the cache without touching the backend.
    pub hits: u64,
    /// Allocations that had to fall through to the backend (including the
    /// batched refill traffic they triggered).
    pub misses: u64,
    /// Releases absorbed by the cache without touching the backend.
    pub cached_frees: u64,
    /// Chunks returned to the backend by flushes (magazine overflow, depot
    /// overflow, or drains).
    pub flushed: u64,
    /// Chunks fetched from the backend by batched refills.
    pub refilled: u64,
    /// Full magazines exchanged with the shared depot (gets + puts).
    pub depot_exchanges: u64,
    /// Chunks returned to the backend by explicit drain calls
    /// (thread-exit drains and whole-cache drains).
    pub drained: u64,
    /// Full magazines the depot could not park — the owning shard's stack
    /// was at capacity, or the cache byte budget was exhausted — so their
    /// chunks were flushed to the backend (the chunks themselves are
    /// counted in `flushed`).
    pub depot_spills: u64,
    /// Full magazines stolen from a neighbouring depot shard after the
    /// caller's own shard ran dry (the bounded work-stealing path behind
    /// `CacheConfig::depot_steal`; zero when stealing is disabled).  Each
    /// steal replaces one batched backend refill with a single tagged CAS
    /// on the victim shard.
    pub depot_steals: u64,
    /// Adaptive-resize events that grew a size class's magazine capacity
    /// (triggered by sustained depot spills).
    pub resize_grows: u64,
    /// Adaptive-resize events that shrank a size class's magazine capacity
    /// (triggered by cache byte-budget pressure).
    pub resize_shrinks: u64,
    /// Bounded retries of backend refills that failed *transiently*
    /// ([`crate::error::AllocError::Transient`] — injected faults or
    /// contention), each preceded by a jittered backoff.  Hard OOM never
    /// retries and is not counted here.
    pub transient_retries: u64,
    /// Chunks rescued from the orphan list: chunks a panic stranded
    /// mid-flush/refill/drain, re-published by the unwinding thread and
    /// returned to the backend by the next toucher.
    pub orphan_rescues: u64,
    /// Number of depot shards magazine exchange is distributed over.
    /// Configuration surfaced for reports, not a counter; summed across
    /// instances when snapshots are merged.
    pub depot_shards: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of allocations served without touching the backend.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total allocation requests observed by the cache.
    pub fn alloc_requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Accumulates `other` into `self`, counter by counter.
    ///
    /// Used by multi-instance deployments to report one merged cache view
    /// across per-node caches (`depot_shards` sums to the fleet-wide shard
    /// count).
    pub fn merge(&mut self, other: &CacheStatsSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.cached_frees += other.cached_frees;
        self.flushed += other.flushed;
        self.refilled += other.refilled;
        self.depot_exchanges += other.depot_exchanges;
        self.drained += other.drained;
        self.depot_spills += other.depot_spills;
        self.depot_steals += other.depot_steals;
        self.resize_grows += other.resize_grows;
        self.resize_shrinks += other.resize_shrinks;
        self.transient_retries += other.transient_retries;
        self.orphan_rescues += other.orphan_rescues;
        self.depot_shards += other.depot_shards;
    }
}

impl fmt::Display for CacheStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} hit-rate={:.3} cached-frees={} flushed={} refilled={} \
             depot={} drained={} shards={} spills={} steals={} grows={} shrinks={} \
             retries={} rescued={}",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.cached_frees,
            self.flushed,
            self.refilled,
            self.depot_exchanges,
            self.drained,
            self.depot_shards,
            self.depot_spills,
            self.depot_steals,
            self.resize_grows,
            self.resize_shrinks,
            self.transient_retries,
            self.orphan_rescues
        )
    }
}

/// A point-in-time copy of the backing-memory accounting of a
/// [`crate::BuddyRegion`]: how much of the managed span is actually
/// committed, and what the decommit scrubber has done about the rest.
///
/// `committed_bytes` is derived from the region's page-granular decommit
/// bitmap and is an **upper bound** on resident memory: a page that was
/// never touched and never scrubbed still counts as committed.  The bound
/// converges on the truth once the scrubber has passed over the idle span.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStatsSnapshot {
    /// Total span the region manages, in bytes.
    pub managed_bytes: u64,
    /// Bytes currently committed (managed minus decommitted) — a gauge.
    pub committed_bytes: u64,
    /// Bytes currently decommitted (released to the kernel) — a gauge.
    pub decommitted_bytes: u64,
    /// Scrub passes completed (cumulative).
    pub scrub_passes: u64,
    /// Free blocks the scrubber claimed and decommitted (cumulative).
    pub scrub_blocks: u64,
    /// Bytes the scrubber decommitted (cumulative).
    pub scrub_bytes: u64,
    /// Bytes whose decommit mark was cleared by a grant — an upper bound on
    /// memory the kernel lazily recommitted (cumulative).
    pub recommitted_bytes: u64,
    /// Empty slab pages trim passes returned to the buddy (cumulative).
    pub trimmed_pages: u64,
}

impl MemoryStatsSnapshot {
    /// Fraction of the managed span currently committed, in `0.0..=1.0`.
    pub fn committed_ratio(&self) -> f64 {
        if self.managed_bytes == 0 {
            0.0
        } else {
            self.committed_bytes as f64 / self.managed_bytes as f64
        }
    }

    /// Accumulates `other` into `self` (gauges and counters both add up:
    /// merged regions manage disjoint spans).
    pub fn merge(&mut self, other: &MemoryStatsSnapshot) {
        self.managed_bytes += other.managed_bytes;
        self.committed_bytes += other.committed_bytes;
        self.decommitted_bytes += other.decommitted_bytes;
        self.scrub_passes += other.scrub_passes;
        self.scrub_blocks += other.scrub_blocks;
        self.scrub_bytes += other.scrub_bytes;
        self.recommitted_bytes += other.recommitted_bytes;
        self.trimmed_pages += other.trimmed_pages;
    }
}

impl fmt::Display for MemoryStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "committed={}/{} ({:.1}%) decommitted={} scrub: passes={} blocks={} bytes={} \
             recommitted={} trimmed-pages={}",
            self.committed_bytes,
            self.managed_bytes,
            self.committed_ratio() * 100.0,
            self.decommitted_bytes,
            self.scrub_passes,
            self.scrub_blocks,
            self.scrub_bytes,
            self.recommitted_bytes,
            self.trimmed_pages
        )
    }
}

/// Per-size-class fragmentation counters of a slab front-end layered over a
/// buddy backend (the `nbbs-slab` crate).
///
/// `bytes_requested` is what callers asked for; `bytes_committed` is what the
/// class actually spent (one `class_size` per object served).  Both are
/// cumulative over the instance's lifetime (a release does not know the
/// original request size, so live-only accounting is impossible without a
/// per-object side table); their ratio is the internal-fragmentation overhead
/// the slab exists to kill — ≤ 1.25 for spaced classes vs up to 2.0 for pure
/// power-of-two rounding.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FragClassSnapshot {
    /// The class's object size in bytes.
    pub class_size: usize,
    /// Sum of the raw request sizes served from this class (cumulative).
    pub bytes_requested: u64,
    /// `objects_served × class_size` — what those requests actually occupied
    /// (cumulative).
    pub bytes_committed: u64,
    /// Objects currently handed out from this class (a gauge, not a
    /// cumulative counter).
    pub live_objects: u64,
}

impl FragClassSnapshot {
    /// `bytes_committed / bytes_requested`, or 0 when nothing is live.
    pub fn ratio(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            self.bytes_committed as f64 / self.bytes_requested as f64
        }
    }
}

/// A point-in-time copy of the fragmentation counters of a slab front-end,
/// exposed through [`crate::BuddyBackend::frag_stats`] so reports can render
/// the per-class table through `dyn BuddyBackend` without downcasting.
///
/// Defined here, next to [`CacheStatsSnapshot`], for the same reason: the
/// core crate owns the hook surface, the `nbbs-slab` crate fills it in.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FragStatsSnapshot {
    /// Per-class counters in ascending `class_size` order.
    pub classes: Vec<FragClassSnapshot>,
    /// Buddy pages currently held by the slab (partial, full, or kept-empty
    /// under the reclaim hysteresis).
    pub pages_live: u64,
    /// Fully-free pages retired back to the buddy over the instance's
    /// lifetime (the hysteresis kept at most K per class; the rest flowed
    /// back for large requests).
    pub pages_retired: u64,
    /// Requests above the slab cutoff passed straight through to the buddy.
    pub passthrough_allocs: u64,
}

impl FragStatsSnapshot {
    /// Sum of `bytes_requested` across classes.
    pub fn bytes_requested(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes_requested).sum()
    }

    /// Sum of `bytes_committed` across classes.
    pub fn bytes_committed(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes_committed).sum()
    }

    /// Objects currently live across all classes.
    pub fn live_objects(&self) -> u64 {
        self.classes.iter().map(|c| c.live_objects).sum()
    }

    /// Overall `bytes_committed / bytes_requested`, or 0 when nothing has
    /// been served.  ≤ 1.25 by construction of the spaced class table.
    pub fn ratio(&self) -> f64 {
        let req = self.bytes_requested();
        if req == 0 {
            0.0
        } else {
            self.bytes_committed() as f64 / req as f64
        }
    }

    /// Accumulates `other` into `self`, aligning classes by size — the
    /// [`CacheStatsSnapshot::merge`] analogue for per-node slab instances.
    pub fn merge(&mut self, other: &FragStatsSnapshot) {
        for oc in &other.classes {
            match self
                .classes
                .iter_mut()
                .find(|c| c.class_size == oc.class_size)
            {
                Some(c) => {
                    c.bytes_requested += oc.bytes_requested;
                    c.bytes_committed += oc.bytes_committed;
                    c.live_objects += oc.live_objects;
                }
                None => self.classes.push(*oc),
            }
        }
        self.classes.sort_by_key(|c| c.class_size);
        self.pages_live += other.pages_live;
        self.pages_retired += other.pages_retired;
        self.passthrough_allocs += other.passthrough_allocs;
    }
}

impl fmt::Display for FragStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested={} committed={} ratio={:.3} live={} pages={} retired={} passthrough={}",
            self.bytes_requested(),
            self.bytes_committed(),
            self.ratio(),
            self.live_objects(),
            self.pages_live,
            self.pages_retired,
            self.passthrough_allocs
        )
    }
}

macro_rules! recorder {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        #[inline(always)]
        pub fn $name(&self, _n: u64) {
            #[cfg(feature = "op-stats")]
            self.$field.fetch_add(_n, Ordering::Relaxed);
        }
    };
}

impl OpStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether counting is compiled in (the `op-stats` feature).
    pub const fn enabled() -> bool {
        cfg!(feature = "op-stats")
    }

    recorder!(
        /// Records `n` successful allocations.
        record_alloc, allocs);
    recorder!(
        /// Records `n` successful releases.
        record_free, frees);
    recorder!(
        /// Records `n` failed allocations.
        record_failed_alloc, failed_allocs);
    recorder!(
        /// Records `n` CAS instructions issued.
        record_cas, cas_ops);
    recorder!(
        /// Records `n` CAS failures.
        record_cas_failure, cas_failures);
    recorder!(
        /// Records `n` nodes skipped by the level scan.
        record_skip, nodes_skipped);

    /// Records `n` CAS failures on a node at tree `level` (0 = root),
    /// feeding the per-level contention heatmap in addition to the
    /// aggregate `cas_failures` counter the caller records separately.
    /// Levels beyond [`CAS_LEVELS`]−1 share the last bin.
    #[inline(always)]
    pub fn record_cas_failure_at(&self, _level: usize, _n: u64) {
        #[cfg(feature = "op-stats")]
        self.cas_failures_by_level[_level.min(CAS_LEVELS - 1)].fetch_add(_n, Ordering::Relaxed);
    }

    /// Returns a copy of the current counter values.
    pub fn snapshot(&self) -> OpStatsSnapshot {
        #[cfg(feature = "op-stats")]
        {
            let mut levels = [0u64; CAS_LEVELS];
            for (out, c) in levels.iter_mut().zip(self.cas_failures_by_level.iter()) {
                *out = c.load(Ordering::Relaxed);
            }
            OpStatsSnapshot {
                allocs: self.allocs.load(Ordering::Relaxed),
                frees: self.frees.load(Ordering::Relaxed),
                failed_allocs: self.failed_allocs.load(Ordering::Relaxed),
                cas_ops: self.cas_ops.load(Ordering::Relaxed),
                cas_failures: self.cas_failures.load(Ordering::Relaxed),
                nodes_skipped: self.nodes_skipped.load(Ordering::Relaxed),
                cas_failures_by_level: levels,
            }
        }
        #[cfg(not(feature = "op-stats"))]
        {
            OpStatsSnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recording_when_enabled() {
        let stats = OpStats::new();
        stats.record_alloc(2);
        stats.record_free(1);
        stats.record_cas(10);
        stats.record_cas_failure(3);
        stats.record_failed_alloc(1);
        stats.record_skip(5);
        let snap = stats.snapshot();
        if OpStats::enabled() {
            assert_eq!(snap.allocs, 2);
            assert_eq!(snap.frees, 1);
            assert_eq!(snap.cas_ops, 10);
            assert_eq!(snap.cas_failures, 3);
            assert_eq!(snap.failed_allocs, 1);
            assert_eq!(snap.nodes_skipped, 5);
            assert!((snap.cas_per_op() - 10.0 / 3.0).abs() < 1e-9);
            assert!((snap.cas_failure_rate() - 0.3).abs() < 1e-9);
        } else {
            assert_eq!(snap, OpStatsSnapshot::default());
        }
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let snap = OpStatsSnapshot::default();
        assert_eq!(snap.cas_per_op(), 0.0);
        assert_eq!(snap.cas_failure_rate(), 0.0);
        assert!(!snap.has_level_contention());
    }

    #[test]
    fn per_level_failures_bin_and_clamp() {
        let stats = OpStats::new();
        stats.record_cas_failure_at(0, 1);
        stats.record_cas_failure_at(3, 2);
        stats.record_cas_failure_at(CAS_LEVELS + 7, 5); // clamps into the last bin
        let snap = stats.snapshot();
        if OpStats::enabled() {
            assert_eq!(snap.cas_failures_by_level[0], 1);
            assert_eq!(snap.cas_failures_by_level[3], 2);
            assert_eq!(snap.cas_failures_by_level[CAS_LEVELS - 1], 5);
            assert!(snap.has_level_contention());
        } else {
            assert!(!snap.has_level_contention());
        }
    }

    #[test]
    fn merge_accumulates_level_bins() {
        let mut a = OpStatsSnapshot::default();
        let mut b = OpStatsSnapshot::default();
        a.cas_failures_by_level[2] = 3;
        b.cas_failures_by_level[2] = 4;
        b.cas_failures_by_level[9] = 1;
        a.merge(&b);
        assert_eq!(a.cas_failures_by_level[2], 7);
        assert_eq!(a.cas_failures_by_level[9], 1);
    }

    #[test]
    fn cache_snapshot_hit_rate() {
        let snap = CacheStatsSnapshot::default();
        assert_eq!(snap.hit_rate(), 0.0);
        assert_eq!(snap.alloc_requests(), 0);
        let snap = CacheStatsSnapshot {
            hits: 3,
            misses: 1,
            ..CacheStatsSnapshot::default()
        };
        assert!((snap.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(snap.alloc_requests(), 4);
        let s = snap.to_string();
        assert!(s.contains("hits=3"));
        assert!(s.contains("hit-rate=0.750"));
    }

    #[test]
    fn cache_snapshots_merge_counterwise() {
        let mut a = CacheStatsSnapshot {
            hits: 10,
            misses: 2,
            depot_spills: 1,
            depot_steals: 2,
            resize_grows: 3,
            depot_shards: 4,
            ..CacheStatsSnapshot::default()
        };
        let b = CacheStatsSnapshot {
            hits: 5,
            flushed: 7,
            depot_steals: 1,
            resize_shrinks: 1,
            depot_shards: 4,
            ..CacheStatsSnapshot::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 15);
        assert_eq!(a.misses, 2);
        assert_eq!(a.flushed, 7);
        assert_eq!(a.depot_spills, 1);
        assert_eq!(a.depot_steals, 3);
        assert_eq!(a.resize_grows, 3);
        assert_eq!(a.resize_shrinks, 1);
        assert_eq!(a.depot_shards, 8, "shards sum across instances");
        let s = a.to_string();
        assert!(s.contains("shards=8"));
        assert!(s.contains("grows=3"));
    }

    #[test]
    fn display_is_informative() {
        let snap = OpStatsSnapshot {
            allocs: 1,
            frees: 1,
            cas_ops: 4,
            ..Default::default()
        };
        let s = snap.to_string();
        assert!(s.contains("allocs=1"));
        assert!(s.contains("cas=4"));
    }
}
