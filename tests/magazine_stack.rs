//! Differential and stress coverage for the lock-free `BoundedStack` — the
//! depot substrate of the `nbbs-cache` magazine layer.
//!
//! The depot-exchange acceptance bar for the sharded cache is "no mutex on
//! the hot path"; the price of removing the mutex is that the stack's
//! correctness now rests on a tagged-CAS ownership protocol instead of a
//! critical section.  This file pins that protocol down two ways:
//!
//! * a property-based *differential* drives identical operation sequences
//!   through the lock-free stack and a `Mutex<Vec>` oracle, requiring
//!   identical results (success/failure, popped values, length) — the
//!   sequential semantics must be exactly those of a bounded Vec-stack;
//! * concurrent storms check linearizability's observable corollaries:
//!   conservation (every pushed value pops exactly once — no loss, no
//!   duplication, the signatures of ABA corruption) and bounded occupancy.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use nbbs_sync::BoundedStack;
use nbbs_workloads::rng::SplitMix64;

#[derive(Debug, Clone)]
enum StackOp {
    Push(u64),
    Pop,
}

fn ops_strategy() -> impl Strategy<Value = Vec<StackOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..1_000_000).prop_map(StackOp::Push),
            2 => Just(StackOp::Pop),
        ],
        1..400,
    )
}

/// A locked bounded stack with the semantics `BoundedStack` must match.
struct Oracle {
    entries: Mutex<Vec<u64>>,
    capacity: usize,
}

impl Oracle {
    fn new(capacity: usize) -> Self {
        Oracle {
            entries: Mutex::new(Vec::new()),
            capacity,
        }
    }

    fn push(&self, v: u64) -> Result<(), u64> {
        let mut e = self.entries.lock().unwrap();
        if e.len() >= self.capacity {
            Err(v)
        } else {
            e.push(v);
            Ok(())
        }
    }

    fn pop(&self) -> Option<u64> {
        self.entries.lock().unwrap().pop()
    }

    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential differential: every operation sequence produces exactly
    /// the oracle's results, for a spread of capacities including the
    /// degenerate zero.
    #[test]
    fn bounded_stack_matches_locked_oracle(ops in ops_strategy()) {
        for capacity in [0usize, 1, 3, 16] {
            let stack = BoundedStack::new(capacity);
            let oracle = Oracle::new(capacity);
            for op in &ops {
                match *op {
                    StackOp::Push(v) => {
                        prop_assert_eq!(
                            stack.push(v),
                            oracle.push(v),
                            "push({}) diverged at capacity {}", v, capacity
                        );
                    }
                    StackOp::Pop => {
                        prop_assert_eq!(
                            stack.pop(),
                            oracle.pop(),
                            "pop diverged at capacity {}", capacity
                        );
                    }
                }
                prop_assert_eq!(stack.len(), oracle.len());
                prop_assert_eq!(stack.is_empty(), oracle.len() == 0);
            }
            // Drain order is the oracle's reversed contents (LIFO).
            let mut expected = Vec::new();
            while let Some(v) = oracle.pop() {
                expected.push(v);
            }
            prop_assert_eq!(stack.drain(), expected);
        }
    }
}

/// Concurrent storm with mixed push/pop per thread: every value that went in
/// comes out exactly once, across interleavings that exercise slot recycling
/// (the ABA window of an untagged Treiber stack).
#[test]
fn concurrent_storm_conserves_values() {
    const THREADS: usize = 6;
    const ITERS: usize = 30_000;
    // Tiny capacity maximizes slot recycling and push rejection.
    for capacity in [2usize, 8] {
        let stack: Arc<BoundedStack<u64>> = Arc::new(BoundedStack::new(capacity));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut rng = SplitMix64::new(0x57AC4 ^ t as u64);
                    let mut popped = Vec::new();
                    let mut pushed = Vec::new();
                    for i in 0..ITERS {
                        if rng.next_u64() & 1 == 0 {
                            let v = ((t as u64) << 32) | i as u64;
                            if stack.push(v).is_ok() {
                                pushed.push(v);
                            }
                        } else if let Some(v) = stack.pop() {
                            popped.push(v);
                        }
                    }
                    (pushed, popped)
                })
            })
            .collect();
        let mut pushed: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        for h in handles {
            let (pu, po) = h.join().unwrap();
            pushed.extend(pu);
            popped.extend(po);
        }
        popped.extend(stack.drain());
        assert!(stack.is_empty());
        let pushed_set: HashSet<u64> = pushed.iter().copied().collect();
        let popped_set: HashSet<u64> = popped.iter().copied().collect();
        assert_eq!(pushed_set.len(), pushed.len(), "duplicate push accepted");
        assert_eq!(
            popped_set.len(),
            popped.len(),
            "capacity {capacity}: a value was popped twice (ABA duplication)"
        );
        assert_eq!(
            pushed_set, popped_set,
            "capacity {capacity}: pushed and popped sets diverged (lost values)"
        );
    }
}

/// Version-tag wraparound, sequentially: starting both heads just below
/// `u32::MAX`, a few dozen operations march the 32-bit tags across the
/// wrap while the stack keeps exact bounded-Vec semantics.  Tags are only
/// ever compared for equality inside the packed CAS word, so the wrap must
/// be invisible — this pins that down by differential against the oracle
/// straddling the boundary.
#[test]
fn version_tag_wraparound_keeps_oracle_semantics() {
    // Each push/pop bumps each head tag by at most one; 3 ops before the
    // wrap, then enough traffic to carry both tags well past zero.
    let stack: BoundedStack<u64> = BoundedStack::with_initial_tag(3, u32::MAX - 3);
    let oracle = Oracle::new(3);
    let (free0, full0) = stack.version_tags();
    assert_eq!((free0, full0), (u32::MAX - 3, u32::MAX - 3));
    let mut rng = SplitMix64::new(0x14A7_77A6);
    for i in 0..200u64 {
        if rng.next_u64() & 1 == 0 {
            assert_eq!(stack.push(i), oracle.push(i), "push({i}) diverged");
        } else {
            assert_eq!(stack.pop(), oracle.pop(), "pop at op {i} diverged");
        }
        assert_eq!(stack.len(), oracle.len());
    }
    let (free_tag, full_tag) = stack.version_tags();
    assert!(
        free_tag < u32::MAX - 3 && full_tag < u32::MAX - 3,
        "tags did not wrap (free {free_tag:#x}, full {full_tag:#x}) — the test \
         lost its purpose"
    );
    let mut expected = Vec::new();
    while let Some(v) = oracle.pop() {
        expected.push(v);
    }
    assert_eq!(stack.drain(), expected);
}

/// Version-tag wraparound under concurrency: the conservation storm (the
/// observable corollary of ABA-freedom — no lost, no duplicated values)
/// run with the tags crossing `u32::MAX` mid-storm.  If the wrap broke the
/// staleness check — e.g. a stale head matching again after the tag
/// recycles — duplication or loss would show here exactly as it would for
/// an untagged stack.
#[test]
fn version_tag_wraparound_still_catches_aba() {
    const THREADS: usize = 6;
    const ITERS: usize = 30_000;
    // Tiny capacity maximizes slot recycling; the tags start close enough
    // to the wrap that every thread's very first operations straddle it.
    let stack: Arc<BoundedStack<u64>> =
        Arc::new(BoundedStack::with_initial_tag(2, u32::MAX - THREADS as u32));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0x0ABA_0ABA ^ t as u64);
                let mut popped = Vec::new();
                let mut pushed = Vec::new();
                for i in 0..ITERS {
                    if rng.next_u64() & 1 == 0 {
                        let v = ((t as u64) << 32) | i as u64;
                        if stack.push(v).is_ok() {
                            pushed.push(v);
                        }
                    } else if let Some(v) = stack.pop() {
                        popped.push(v);
                    }
                }
                (pushed, popped)
            })
        })
        .collect();
    let mut pushed: Vec<u64> = Vec::new();
    let mut popped: Vec<u64> = Vec::new();
    for h in handles {
        let (pu, po) = h.join().unwrap();
        pushed.extend(pu);
        popped.extend(po);
    }
    popped.extend(stack.drain());
    let (free_tag, full_tag) = stack.version_tags();
    assert!(
        free_tag < u32::MAX - THREADS as u32,
        "free tag did not wrap ({free_tag:#x})"
    );
    assert!(
        full_tag < u32::MAX - THREADS as u32,
        "full tag did not wrap ({full_tag:#x})"
    );
    let pushed_set: HashSet<u64> = pushed.iter().copied().collect();
    let popped_set: HashSet<u64> = popped.iter().copied().collect();
    assert_eq!(pushed_set.len(), pushed.len(), "duplicate push accepted");
    assert_eq!(
        popped_set.len(),
        popped.len(),
        "a value was popped twice across the tag wrap (ABA duplication)"
    );
    assert_eq!(
        pushed_set, popped_set,
        "pushed and popped sets diverged across the tag wrap (lost values)"
    );
}

/// The stack never exceeds its capacity even under concurrent pressure:
/// accepted pushes minus completed pops can never exceed the slab.
#[test]
fn concurrent_occupancy_stays_bounded() {
    const THREADS: usize = 4;
    let stack: Arc<BoundedStack<u64>> = Arc::new(BoundedStack::new(4));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(t as u64);
                let mut accepted = 0u64;
                let mut removed = 0u64;
                for i in 0..20_000u64 {
                    if !rng.next_u64().is_multiple_of(3) {
                        if stack.push((t as u64) << 32 | i).is_ok() {
                            accepted += 1;
                        }
                    } else if stack.pop().is_some() {
                        removed += 1;
                    }
                }
                (accepted, removed)
            })
        })
        .collect();
    let mut accepted = 0u64;
    let mut removed = 0u64;
    for h in handles {
        let (a, r) = h.join().unwrap();
        accepted += a;
        removed += r;
    }
    let residual = accepted - removed;
    assert!(
        residual <= 4,
        "{residual} values remain on a 4-slot stack — capacity was violated"
    );
    assert_eq!(stack.drain().len() as u64, residual);
}
