//! End-to-end tests of the elastic region stack: [`ElasticSet`] behind a
//! [`BuddyRegion`], growing under OOM pressure, retiring drained regions
//! at trough, and handing the retired spans back to the kernel through the
//! decommit scrubber.
//!
//! The widened offset space is reserved up front but the backing mapping
//! is demand-zero, so these tests check the *physical* story too: the
//! committed-bytes counter must ramp with the chain and collapse after a
//! scrub, and memory that crossed the decommit boundary must still be
//! readable/writable when its region reactivates.

use std::time::{Duration, Instant};

use nbbs::{BuddyBackend, BuddyConfig, BuddyRegion, ElasticSet, NbbsFourLevel};

/// Per-region span: 64 KiB of 4 KiB blocks (16 per region).
const REGION_TOTAL: usize = 1 << 16;
const BLOCK: usize = 1 << 12;
const MAX_REGIONS: usize = 4;

fn elastic_region() -> BuddyRegion<ElasticSet<NbbsFourLevel>> {
    let config = BuddyConfig::new(REGION_TOTAL, 64, BLOCK).unwrap();
    BuddyRegion::new(
        ElasticSet::new(MAX_REGIONS, move |_slot| NbbsFourLevel::new(config))
            .with_grow_threshold(1),
    )
}

#[test]
fn chain_grows_under_pressure_and_scrubs_back_at_trough() {
    let region = elastic_region();
    assert_eq!(region.managed_bytes(), MAX_REGIONS * REGION_TOTAL);

    // Ramp: fill well past the first region, writing a distinct pattern to
    // every block so cross-region routing bugs show up as corruption.
    let mut held = Vec::new();
    while let Some(ptr) = region.alloc_bytes(BLOCK) {
        unsafe { ptr.as_ptr().write_bytes(held.len() as u8, BLOCK) };
        held.push(ptr);
    }
    assert_eq!(held.len(), MAX_REGIONS * (REGION_TOTAL / BLOCK));
    let stats = region.backend().elastic_stats();
    assert_eq!(stats.active_regions, MAX_REGIONS);
    assert_eq!(stats.grows as usize, MAX_REGIONS - 1);

    let peak = region.committed_bytes();
    assert_eq!(peak, MAX_REGIONS * REGION_TOTAL, "every grant committed");
    for (i, ptr) in held.iter().enumerate() {
        let b = unsafe { *ptr.as_ptr() };
        assert_eq!(b, i as u8, "block {i} kept its pattern across the ramp");
    }

    // Trough: free everything, then one scrub pass.  The pass first trims
    // and retires the drained regions, then walks the (now whole-span)
    // free chunks and releases their pages.
    for ptr in held.drain(..) {
        region.dealloc_bytes(ptr);
    }
    let freed = region.scrub_pass();
    assert!(freed > 0, "the scrub released pages");

    let stats = region.backend().elastic_stats();
    assert_eq!(stats.active_regions, 1, "only the first region survives");
    assert_eq!(stats.retires as usize, MAX_REGIONS - 1);
    let mem = region.memory_stats();
    assert!(
        mem.committed_bytes as usize <= peak * 35 / 100,
        "trough committed {} B should be well under peak {} B",
        mem.committed_bytes,
        peak
    );
}

#[test]
fn dormant_regions_reactivate_and_their_memory_survives_the_boundary() {
    let region = elastic_region();

    // Ramp up, ramp down, scrub: regions 1..N are now dormant with their
    // pages handed back to the kernel.
    let mut held = Vec::new();
    while let Some(ptr) = region.alloc_bytes(BLOCK) {
        held.push(ptr);
    }
    for ptr in held.drain(..) {
        region.dealloc_bytes(ptr);
    }
    region.scrub_pass();
    assert_eq!(region.backend().elastic_stats().active_regions, 1);

    // Renewed pressure: the set reactivates dormant slots (never builds
    // anew — they are already constructed) and the recycled memory, fresh
    // from the decommit boundary, must be demand-zero and writable.
    while let Some(ptr) = region.alloc_bytes(BLOCK) {
        held.push(ptr);
    }
    assert_eq!(held.len(), MAX_REGIONS * (REGION_TOTAL / BLOCK));
    let stats = region.backend().elastic_stats();
    assert_eq!(stats.active_regions, MAX_REGIONS);
    assert_eq!(
        stats.reactivations as usize,
        MAX_REGIONS - 1,
        "pressure reactivates, it does not rebuild"
    );
    assert_eq!(stats.built_regions, MAX_REGIONS);

    for ptr in &held {
        let bytes = unsafe { std::slice::from_raw_parts(ptr.as_ptr(), BLOCK) };
        assert!(
            bytes.iter().all(|&b| b == 0),
            "reactivated pages read demand-zero"
        );
        unsafe { ptr.as_ptr().write_bytes(0xC3, BLOCK) };
    }
    for ptr in held {
        region.dealloc_bytes(ptr);
    }
    assert_eq!(region.backend().allocated_bytes(), 0);
}

#[test]
fn background_scrubber_drives_the_chain_down() {
    let region = elastic_region();
    region.start_scrubber(Duration::from_millis(5));

    // Burst past the first region, then drop to idle.
    let mut held = Vec::new();
    while let Some(ptr) = region.alloc_bytes(BLOCK) {
        held.push(ptr);
    }
    let peak = region.committed_bytes();
    for ptr in held.drain(..) {
        region.dealloc_bytes(ptr);
    }

    // The background thread retires the drained regions and decommits
    // their spans without any further help from this thread.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = region.backend().elastic_stats();
        let mem = region.memory_stats();
        if stats.active_regions == 1 && mem.committed_bytes as usize <= peak * 35 / 100 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scrubber never drove the chain down: {stats:?}, {mem}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    region.stop_scrubber();
}

#[test]
fn scrub_claims_never_touch_live_blocks_across_regions() {
    let region = elastic_region();

    // Spread live blocks across the whole chain, then free every other one
    // so the scrubber has plenty to claim *between* live neighbours.
    let mut held = Vec::new();
    while let Some(ptr) = region.alloc_bytes(BLOCK) {
        unsafe { ptr.as_ptr().write_bytes(0xA5, BLOCK) };
        held.push(ptr);
    }
    let mut live = Vec::new();
    for (i, ptr) in held.drain(..).enumerate() {
        if i % 2 == 0 {
            live.push(ptr);
        } else {
            region.dealloc_bytes(ptr);
        }
    }

    for _ in 0..3 {
        region.scrub_pass();
    }

    for ptr in &live {
        let bytes = unsafe { std::slice::from_raw_parts(ptr.as_ptr(), BLOCK) };
        assert!(
            bytes.iter().all(|&b| b == 0xA5),
            "live block contents survive interleaved scrub passes"
        );
    }
    for ptr in live {
        region.dealloc_bytes(ptr);
    }
    region.scrub_pass();
    assert_eq!(region.backend().allocated_bytes(), 0);
}
