//! Failure-path and edge-case integration tests: exhaustion, oversized and
//! invalid requests, invalid frees, recovery after out-of-memory, and
//! multi-instance fallback behaviour.

use std::alloc::Layout;
use std::ptr::NonNull;

use proptest::prelude::*;

use nbbs::error::{AllocError, FreeError};
#[allow(deprecated)]
use nbbs::MultiInstance;
use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel, NbbsOneLevel};
use nbbs_alloc::NbbsAllocator;
use nbbs_cache::MagazineCache;
use nbbs_numa::{NodePolicy, NodeSet, Topology};
use nbbs_workloads::factory::{build, AllocatorKind};
use nbbs_workloads::rng::SplitMix64;

fn config_for(kind: AllocatorKind, total: usize) -> BuddyConfig {
    if kind == AllocatorKind::LinuxBuddy {
        BuddyConfig::new(total.max(1 << 16), 4096, 1 << 16).unwrap()
    } else {
        BuddyConfig::new(total, 8, total.min(1 << 14)).unwrap()
    }
}

#[test]
fn oversized_requests_fail_cleanly_everywhere() {
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind, 1 << 16));
        let max = alloc.max_size();
        assert_eq!(alloc.alloc(max + 1), None, "{}", alloc.name());
        assert!(matches!(
            alloc.try_alloc(max * 2),
            Err(AllocError::TooLarge { .. })
        ));
        assert_eq!(alloc.allocated_bytes(), 0);
        // The failed attempts must not have perturbed the allocator.
        let ok = alloc.alloc(max).unwrap();
        alloc.dealloc(ok);
    }
}

#[test]
fn exhaustion_reports_oom_and_recovers_everywhere() {
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind, 1 << 16));
        let unit = alloc.min_size();
        let mut held = Vec::new();
        while let Some(off) = alloc.alloc(unit) {
            held.push(off);
            assert!(
                held.len() <= alloc.total_memory() / unit,
                "{} over-allocated",
                alloc.name()
            );
        }
        assert_eq!(
            held.len(),
            alloc.total_memory() / unit,
            "{} under-utilized its region",
            alloc.name()
        );
        assert!(matches!(
            alloc.try_alloc(unit),
            Err(AllocError::OutOfMemory { .. })
        ));
        // Free half, in a scattered order, and verify proportional recovery.
        let mut rng = SplitMix64::new(3);
        for _ in 0..held.len() / 2 {
            let off = held.swap_remove(rng.next_below(held.len()));
            alloc.dealloc(off);
        }
        let mut reacquired = Vec::new();
        for _ in 0..alloc.total_memory() / unit / 2 {
            reacquired.push(
                alloc
                    .alloc(unit)
                    .unwrap_or_else(|| panic!("{}: failed to reuse freed capacity", alloc.name())),
            );
        }
        for off in held.into_iter().chain(reacquired) {
            alloc.dealloc(off);
        }
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}

#[test]
fn invalid_frees_are_rejected_without_corruption() {
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind, 1 << 16));
        let unit = alloc.min_size();
        assert!(matches!(
            alloc.try_dealloc(alloc.total_memory() + unit),
            Err(FreeError::OutOfRange { .. })
        ));
        assert!(matches!(
            alloc.try_dealloc(unit / 2 + 1),
            Err(FreeError::Misaligned { .. })
        ));
        // A valid-looking offset that was never allocated.
        assert!(
            matches!(alloc.try_dealloc(unit), Err(FreeError::NotAllocated { .. })),
            "{}",
            alloc.name()
        );
        // The allocator still works normally afterwards.
        let off = alloc.alloc(unit).unwrap();
        assert!(alloc.try_dealloc(off).is_ok());
        assert!(matches!(
            alloc.try_dealloc(off),
            Err(FreeError::NotAllocated { .. })
        ));
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}

#[test]
fn fragmentation_induced_oom_is_transient_not_permanent() {
    // Allocate every leaf, free every other leaf: half the memory is free but
    // a max-size request cannot be served (external fragmentation).  Freeing
    // the other half must restore full capacity (coalescing).
    for kind in [
        AllocatorKind::OneLevelNb,
        AllocatorKind::FourLevelNb,
        AllocatorKind::BuddySl,
    ] {
        let alloc = build(kind, BuddyConfig::new(1 << 12, 8, 1 << 12).unwrap());
        let leaves: Vec<usize> = (0..(1 << 12) / 8)
            .map(|_| alloc.alloc(8).unwrap())
            .collect();
        // Partition by *address* parity so that every buddy pair keeps exactly
        // one live unit (the scattered scan makes allocation order arbitrary).
        let (even, odd): (Vec<usize>, Vec<usize>) =
            leaves.into_iter().partition(|off| (off / 8) % 2 == 0);
        for &off in &even {
            alloc.dealloc(off);
        }
        assert_eq!(alloc.allocated_bytes(), (1 << 12) / 2);
        assert_eq!(
            alloc.alloc(1 << 12),
            None,
            "{}: fragmented region served a maximal chunk",
            alloc.name()
        );
        assert_eq!(
            alloc.alloc(16),
            None,
            "{}: no two adjacent free units exist",
            alloc.name()
        );
        for &off in &odd {
            alloc.dealloc(off);
        }
        let whole = alloc.alloc(1 << 12);
        assert!(
            whole.is_some(),
            "{}: coalescing failed after drain",
            alloc.name()
        );
        alloc.dealloc(whole.unwrap());
    }
}

#[test]
#[allow(deprecated)]
fn multi_instance_falls_back_and_reports_exhaustion() {
    let instances: Vec<NbbsOneLevel> = (0..3)
        .map(|_| NbbsOneLevel::new(BuddyConfig::new(4096, 64, 4096).unwrap()))
        .collect();
    let multi = MultiInstance::new(instances);
    assert_eq!(multi.total_memory(), 3 * 4096);

    // Fill instance 0 explicitly; routed allocations must overflow to the
    // other instances rather than failing.
    let mut held = Vec::new();
    while let Some(off) = multi.alloc_on(0, 4096) {
        held.push(off);
    }
    for _ in 0..2 {
        let off = multi.alloc(4096).expect("fallback must serve the request");
        assert_ne!(multi.owner_of(off), 0);
        held.push(off);
    }
    assert!(matches!(
        multi.try_alloc(64),
        Err(nbbs::AllocError::OutOfMemory { .. })
    ));
    assert!(matches!(
        multi.try_alloc(1 << 20),
        Err(nbbs::AllocError::TooLarge { .. })
    ));
    for off in held {
        multi.dealloc(off);
    }
    assert_eq!(multi.allocated_bytes(), 0);
}

#[test]
fn zero_sized_and_tiny_requests_round_up_to_the_unit() {
    for kind in [AllocatorKind::OneLevelNb, AllocatorKind::FourLevelNb] {
        let alloc = build(kind, BuddyConfig::new(1 << 12, 64, 1 << 12).unwrap());
        let a = alloc.alloc(0).expect("zero-sized requests round up");
        let b = alloc.alloc(1).unwrap();
        let c = alloc.alloc(63).unwrap();
        assert_eq!(alloc.allocated_bytes(), 3 * 64);
        for off in [a, b, c] {
            alloc.dealloc(off);
        }
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}

#[test]
fn exhaustion_surfaces_oom_through_the_cached_facade_and_recovers() {
    // The production stack: Layout-aware facade over the magazine cache
    // over the 4-level tree.  Exhaustion must surface as a typed hard OOM
    // (not a panic, not a wedged cache), oversize as TooLarge, and freeing
    // everything must restore the full region — including the chunks that
    // were parked in magazines along the way.
    const TOTAL: usize = 1 << 16;
    const UNIT: usize = 64;
    let cfg = BuddyConfig::new(TOTAL, UNIT, 1 << 14).unwrap();
    let alloc = NbbsAllocator::new(MagazineCache::new(NbbsFourLevel::new(cfg)));
    let layout = Layout::from_size_align(UNIT, UNIT).unwrap();

    let mut held: Vec<NonNull<u8>> = Vec::new();
    while let Ok(block) = alloc.allocate(layout) {
        held.push(block.cast());
        assert!(held.len() <= TOTAL / UNIT, "cached facade over-allocated");
    }
    // Magazines cannot hide capacity from a persistent caller: every unit
    // ends up served before the facade reports OOM.
    assert_eq!(held.len(), TOTAL / UNIT, "cached facade under-utilized");
    assert!(matches!(
        alloc.allocate(layout),
        Err(AllocError::OutOfMemory { .. })
    ));
    assert!(matches!(
        alloc.allocate(Layout::from_size_align(1 << 15, 8).unwrap()),
        Err(AllocError::TooLarge { .. })
    ));

    // Scattered half-free, then proportional reuse through the cache.
    let mut rng = SplitMix64::new(17);
    for _ in 0..held.len() / 2 {
        let ptr = held.swap_remove(rng.next_below(held.len()));
        unsafe { alloc.deallocate(ptr, layout) };
    }
    let mut reacquired = Vec::new();
    for _ in 0..TOTAL / UNIT / 2 {
        reacquired.push(
            alloc
                .allocate(layout)
                .expect("freed capacity must be reusable through the cache")
                .cast::<u8>(),
        );
    }
    for ptr in held.into_iter().chain(reacquired) {
        unsafe { alloc.deallocate(ptr, layout) };
    }
    assert_eq!(alloc.allocated_bytes(), 0);

    // Full recovery: drain the magazines and the whole region coalesces.
    alloc.backend().drain_cache();
    let whole = alloc
        .allocate(Layout::from_size_align(1 << 14, 8).unwrap())
        .expect("drained region must serve a max-class block");
    unsafe { alloc.deallocate(whole.cast(), Layout::from_size_align(1 << 14, 8).unwrap()) };
}

#[test]
fn exhaustion_surfaces_oom_through_the_nodeset_and_recovers() {
    // Multi-node deployment: exhausting every node must report OOM (after
    // remote fallback has genuinely tried them all), oversize must be
    // TooLarge, and scattered frees must restore capacity on both nodes.
    const PER_NODE: usize = 1 << 14;
    const UNIT: usize = 64;
    let per = BuddyConfig::new(PER_NODE, UNIT, 1 << 12).unwrap();
    let set = NodeSet::with_topology(
        (0..2).map(|_| NbbsFourLevel::new(per)).collect(),
        Topology::synthetic(2),
        NodePolicy::HomeFirst,
    );
    let mut held = Vec::new();
    while let Some(off) = set.alloc(UNIT) {
        held.push(off);
        assert!(
            held.len() <= set.total_memory() / UNIT,
            "NodeSet over-allocated"
        );
    }
    assert_eq!(
        held.len(),
        set.total_memory() / UNIT,
        "remote fallback left capacity stranded on a node"
    );
    assert!(matches!(
        set.try_alloc(UNIT),
        Err(AllocError::OutOfMemory { .. })
    ));
    assert!(matches!(
        set.try_alloc(set.max_size() * 2),
        Err(AllocError::TooLarge { .. })
    ));

    let mut rng = SplitMix64::new(23);
    for _ in 0..held.len() / 2 {
        let off = held.swap_remove(rng.next_below(held.len()));
        set.dealloc(off);
    }
    for _ in 0..set.total_memory() / UNIT / 2 {
        held.push(
            set.alloc(UNIT)
                .expect("freed capacity must be reusable across nodes"),
        );
    }
    for off in held {
        set.dealloc(off);
    }
    assert_eq!(set.allocated_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dirty-reuse property: `allocate_zeroed` must always hand back all-
    /// zero memory even when the chunk it reuses was just scribbled on and
    /// round-tripped through a magazine (the cache returns recycled chunks
    /// without touching the backing bytes — zeroing is the facade's job).
    #[test]
    fn allocate_zeroed_never_leaks_dirty_bytes(ops in collection::vec((1usize..=2048, 0usize..=2), 1..200)) {
        let cfg = BuddyConfig::new(1 << 16, 64, 1 << 14).unwrap();
        let alloc = NbbsAllocator::new(MagazineCache::new(NbbsFourLevel::new(cfg)));
        let mut live: Vec<(NonNull<u8>, Layout)> = Vec::new();
        for (size, action) in ops {
            if action == 2 || live.len() > 24 {
                if live.is_empty() {
                    continue;
                }
                let (ptr, layout) = live.swap_remove(size % live.len());
                unsafe { alloc.deallocate(ptr, layout) };
                continue;
            }
            let layout = Layout::from_size_align(size, 8).unwrap();
            let block = if action == 1 {
                alloc.allocate_zeroed(layout)
            } else {
                alloc.allocate(layout)
            };
            let Ok(block) = block else { continue };
            let ptr = block.cast::<u8>();
            if action == 1 {
                for i in 0..size {
                    let byte = unsafe { ptr.as_ptr().add(i).read() };
                    prop_assert_eq!(byte, 0, "dirty byte at offset {} of a zeroed {}-byte block", i, size);
                }
            }
            // Scribble over the whole block so any future reuse of this
            // chunk starts from maximally dirty bytes.
            unsafe { std::ptr::write_bytes(ptr.as_ptr(), 0xAA, size) };
            live.push((ptr, layout));
        }
        for (ptr, layout) in live {
            unsafe { alloc.deallocate(ptr, layout) };
        }
        prop_assert_eq!(alloc.allocated_bytes(), 0);
    }
}

#[test]
fn four_level_and_one_level_survive_pathological_interleaving() {
    // Alternate parent/child-order allocations designed to maximize climb
    // conflicts and rollbacks (TRYALLOC abort path, lines T11–T13).
    for kind in [AllocatorKind::OneLevelNb, AllocatorKind::FourLevelNb] {
        let alloc = build(kind, BuddyConfig::new(1 << 12, 8, 1 << 12).unwrap());
        let mut rng = SplitMix64::new(11);
        for _ in 0..2_000 {
            let big = alloc.alloc(1 << 11);
            let mut smalls = Vec::new();
            for _ in 0..rng.next_below(8) {
                if let Some(off) = alloc.alloc(8 << rng.next_below(4)) {
                    smalls.push(off);
                }
            }
            // Freeing order alternates to exercise both coalescing directions.
            if rng.next_u64() & 1 == 0 {
                if let Some(off) = big {
                    alloc.dealloc(off);
                }
                for off in smalls {
                    alloc.dealloc(off);
                }
            } else {
                for off in smalls {
                    alloc.dealloc(off);
                }
                if let Some(off) = big {
                    alloc.dealloc(off);
                }
            }
        }
        assert_eq!(alloc.allocated_bytes(), 0);
        let whole = alloc
            .alloc(1 << 12)
            .expect("full capacity must be restored");
        alloc.dealloc(whole);
    }
}
