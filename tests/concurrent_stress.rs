//! Concurrent stress tests across every allocator in the evaluation.
//!
//! These tests exercise the regimes the paper's benchmarks create —
//! same-size contention, mixed sizes, producer/consumer (remote) frees, and
//! oversubscription — and check the system-wide invariants that must hold no
//! matter how operations interleave:
//!
//! * chunks handed to different threads never overlap while both are live,
//! * the byte accounting returns to zero once everything is freed,
//! * the full region coalesces back after the storm,
//! * the non-blocking variants' metadata audits clean at quiescence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nbbs::verify::audit_empty;
use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel, NbbsOneLevel};
use nbbs_workloads::factory::{build, AllocatorKind, SharedBackend};
use nbbs_workloads::rng::SplitMix64;

/// Shared log of `(offset, granted, start_epoch, end_epoch)` lifetimes.
type ChunkLifetimeLog = Arc<Mutex<Vec<(usize, usize, usize, usize)>>>;

fn user_config() -> BuddyConfig {
    BuddyConfig::new(1 << 20, 8, 1 << 14).unwrap()
}

fn kernel_config() -> BuddyConfig {
    BuddyConfig::new(1 << 22, 4096, 1 << 17).unwrap()
}

fn config_for(kind: AllocatorKind) -> BuddyConfig {
    if kind == AllocatorKind::LinuxBuddy {
        kernel_config()
    } else {
        user_config()
    }
}

/// Mixed-size storm: every thread allocates and frees random sizes; at the
/// end everything must be back to a pristine state.
fn mixed_size_storm(alloc: &SharedBackend, threads: usize, iters: usize) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let alloc = Arc::clone(alloc);
            std::thread::spawn(move || {
                let min = alloc.min_size();
                let spread = (alloc.max_size() / min).trailing_zeros() as usize + 1;
                let mut rng = SplitMix64::new(0x5EED ^ t as u64);
                let mut live = Vec::new();
                for _ in 0..iters {
                    if live.is_empty() || rng.next_u64() & 1 == 0 {
                        let size = min << rng.next_below(spread.min(8));
                        if let Some(off) = alloc.alloc(size) {
                            live.push(off);
                        }
                    } else {
                        let off = live.swap_remove(rng.next_below(live.len()));
                        alloc.dealloc(off);
                    }
                }
                for off in live {
                    alloc.dealloc(off);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(alloc.allocated_bytes(), 0, "{} leaked memory", alloc.name());
    // Return any magazine-cached chunks to the backend (no-op for uncached
    // allocators); the whole region must then be recoverable as maximal
    // chunks.
    alloc.drain_cache();
    let max = alloc.max_size();
    let mut maximal = Vec::new();
    for _ in 0..alloc.total_memory() / max {
        maximal.push(
            alloc
                .alloc(max)
                .unwrap_or_else(|| panic!("{} lost capacity after the storm", alloc.name())),
        );
    }
    for off in maximal {
        alloc.dealloc(off);
    }
}

#[test]
fn mixed_size_storm_on_every_allocator() {
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind));
        mixed_size_storm(&alloc, 6, 3_000);
    }
}

#[test]
fn non_blocking_variants_audit_clean_after_storm() {
    let one = Arc::new(NbbsOneLevel::new(user_config()));
    let shared: SharedBackend = one.clone();
    mixed_size_storm(&shared, 8, 4_000);
    audit_empty(&*one).assert_clean();

    let four = Arc::new(NbbsFourLevel::new(user_config()));
    let shared: SharedBackend = four.clone();
    mixed_size_storm(&shared, 8, 4_000);
    audit_empty(&*four).assert_clean();
}

/// Global overlap detection: every thread records the chunks it held in a
/// shared log with timestamps (a simple global epoch counter); afterwards we
/// verify that no two chunks with overlapping lifetimes overlap in space.
#[test]
fn concurrent_chunks_never_overlap_in_space_and_time() {
    for kind in [AllocatorKind::OneLevelNb, AllocatorKind::FourLevelNb] {
        let alloc = build(kind, BuddyConfig::new(1 << 14, 8, 1 << 10).unwrap());
        let epoch = Arc::new(AtomicUsize::new(0));
        // (offset, granted, start_epoch, end_epoch)
        let log: ChunkLifetimeLog = Arc::new(Mutex::new(Vec::new()));

        let handles: Vec<_> = (0..6)
            .map(|t| {
                let alloc = Arc::clone(&alloc);
                let epoch = Arc::clone(&epoch);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut rng = SplitMix64::new(t as u64 + 100);
                    let mut held: Vec<(usize, usize, usize)> = Vec::new();
                    for _ in 0..2_000 {
                        if held.is_empty() || rng.next_u64() & 1 == 0 {
                            let size = 8usize << rng.next_below(8);
                            if let Some(off) = alloc.alloc(size) {
                                let granted = alloc.geometry().granted_size(size).unwrap();
                                let start = epoch.fetch_add(1, Ordering::SeqCst);
                                held.push((off, granted, start));
                            }
                        } else {
                            let (off, granted, start) =
                                held.swap_remove(rng.next_below(held.len()));
                            let end = epoch.fetch_add(1, Ordering::SeqCst);
                            alloc.dealloc(off);
                            log.lock().unwrap().push((off, granted, start, end));
                        }
                    }
                    let end = epoch.fetch_add(1, Ordering::SeqCst);
                    let mut l = log.lock().unwrap();
                    for (off, granted, start) in held {
                        alloc.dealloc(off);
                        l.push((off, granted, start, end));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let entries = log.lock().unwrap();
        for a in entries.iter() {
            for b in entries.iter() {
                if std::ptr::eq(a, b) {
                    continue;
                }
                let space_overlap = a.0 < b.0 + b.1 && b.0 < a.0 + a.1;
                // Conservative lifetime overlap: allocation epoch strictly
                // inside the other's [start, end) window.
                let time_overlap = a.2 > b.2 && a.2 < b.3;
                assert!(
                    !(space_overlap && time_overlap),
                    "{kind:?}: chunk {a:?} overlaps {b:?} in space and time"
                );
            }
        }
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}

/// Producer/consumer pattern (remote frees) on every allocator: allocating
/// and freeing threads are disjoint.
#[test]
fn remote_frees_on_every_allocator() {
    use std::sync::mpsc;
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind));
        let pairs = 3;
        let iters = 1_500usize;
        let mut handles = Vec::new();
        for p in 0..pairs {
            let (tx, rx) = mpsc::channel::<usize>();
            let producer = {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    let mut rng = SplitMix64::new(p as u64);
                    for _ in 0..iters {
                        let size = alloc.min_size() << rng.next_below(4);
                        loop {
                            if let Some(off) = alloc.alloc(size) {
                                tx.send(off).unwrap();
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            };
            let consumer = {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let off = rx.recv().unwrap();
                        alloc.dealloc(off);
                    }
                })
            };
            handles.push(producer);
            handles.push(consumer);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(alloc.allocated_bytes(), 0, "{} leaked", alloc.name());
    }
}

/// Same-size contention at the smallest granularity, heavily oversubscribed
/// relative to the single host core: the worst case for spin locks and the
/// best showcase for lock-freedom; here we only assert correctness.
#[test]
fn same_size_contention_all_allocators() {
    for &kind in AllocatorKind::all() {
        let alloc = build(kind, config_for(kind));
        let size = alloc.min_size();
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        if let Some(off) = alloc.alloc(size) {
                            alloc.dealloc(off);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(alloc.allocated_bytes(), 0, "{} leaked", alloc.name());
    }
}
