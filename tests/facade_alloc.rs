//! Differential and concurrency tests of the `nbbs-alloc` facade.
//!
//! The property test drives `allocate`/`allocate_zeroed`/`grow`/`shrink`/
//! `deallocate` with randomized layouts (sizes *and* alignments) and checks
//! the facade against a mirror oracle kept in `System`-allocated `Vec`s:
//! every live block's contents must match its mirror after every step
//! (which catches overlap and realloc corruption in one stroke), every
//! pointer must honour its layout's alignment, and `allocate_zeroed` must
//! actually scrub recycled buddy chunks.

use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel};
use nbbs_alloc::NbbsAllocator;
use nbbs_cache::{drain_on_thread_exit, CacheConfig, DrainOnExit, FlushPolicy, MagazineCache};

const TOTAL: usize = 1 << 20;
const MIN: usize = 16;
const MAX: usize = 1 << 13;

fn facade() -> NbbsAllocator<MagazineCache<NbbsFourLevel>> {
    let config = BuddyConfig::new(TOTAL, MIN, MAX).unwrap();
    NbbsAllocator::new(MagazineCache::new(NbbsFourLevel::new(config)))
}

/// One step of a generated layout workload.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes at `1 << align_log` alignment; `zeroed` picks
    /// `allocate_zeroed`.
    Alloc {
        size: usize,
        align_log: u32,
        zeroed: bool,
    },
    /// Release the k-th live block (modulo the live count).
    Free(usize),
    /// Grow or shrink the k-th live block to `size` bytes (same alignment).
    Realloc { idx: usize, size: usize },
    /// One synchronous decommit-scrubber pass over the backing region: free
    /// pages are claimed and released to the kernel mid-workload, so every
    /// later step runs against memory that may have crossed the decommit
    /// boundary.
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..u64::MAX).prop_map(|bits| Op::Alloc {
            size: 1 + (bits % 5000) as usize,
            align_log: ((bits >> 24) % 13) as u32, // 1 B .. 4 KiB
            zeroed: (bits >> 40) & 1 == 1,
        }),
        2 => (0usize..64).prop_map(Op::Free),
        3 => (0u64..u64::MAX).prop_map(|bits| Op::Realloc {
            idx: (bits % 64) as usize,
            size: 1 + ((bits >> 16) % 5000) as usize,
        }),
        1 => Just(Op::Scrub),
    ]
}

/// A live facade block plus its `System`-side mirror of expected contents.
struct LiveBlock {
    ptr: NonNull<u8>,
    layout: Layout,
    mirror: Vec<u8>,
}

impl LiveBlock {
    fn contents_match(&self) -> bool {
        let actual = unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.layout.size()) };
        actual == self.mirror.as_slice()
    }
}

/// Deterministic fill pattern for the `n`-th allocation event.
fn fill(block: &mut LiveBlock, seed: usize) {
    for (i, byte) in block.mirror.iter_mut().enumerate() {
        *byte = (seed ^ i).wrapping_mul(0x9E) as u8;
    }
    unsafe {
        std::ptr::copy_nonoverlapping(
            block.mirror.as_ptr(),
            block.ptr.as_ptr(),
            block.mirror.len(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The facade agrees with the System-mirror oracle over arbitrary
    /// allocate/grow/shrink/deallocate sequences.
    #[test]
    fn facade_matches_system_oracle(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let alloc = facade();
        let mut live: Vec<LiveBlock> = Vec::new();
        let mut event = 0usize;
        for op in ops {
            event += 1;
            match op {
                Op::Alloc { size, align_log, zeroed } => {
                    let layout = Layout::from_size_align(size, 1 << align_log).unwrap();
                    let block = if zeroed {
                        alloc.allocate_zeroed(layout)
                    } else {
                        alloc.allocate(layout)
                    };
                    let Ok(block) = block else { continue }; // transient OOM
                    let ptr = block.cast::<u8>();
                    prop_assert!(block.len() >= size, "slice covers the request");
                    prop_assert_eq!(
                        ptr.as_ptr() as usize % layout.align(), 0,
                        "alignment honoured"
                    );
                    if zeroed {
                        let bytes = unsafe {
                            std::slice::from_raw_parts(ptr.as_ptr(), block.len())
                        };
                        prop_assert!(
                            bytes.iter().all(|&b| b == 0),
                            "allocate_zeroed scrubbed a recycled chunk"
                        );
                    }
                    let mut fresh = LiveBlock { ptr, layout, mirror: vec![0u8; size] };
                    fill(&mut fresh, event);
                    live.push(fresh);
                }
                Op::Free(k) => {
                    if live.is_empty() { continue; }
                    let block = live.swap_remove(k % live.len());
                    prop_assert!(block.contents_match(), "contents intact at release");
                    unsafe { alloc.deallocate(block.ptr, block.layout) };
                }
                Op::Realloc { idx, size } => {
                    if live.is_empty() { continue; }
                    let idx = idx % live.len();
                    let block = &mut live[idx];
                    let new_layout =
                        Layout::from_size_align(size, block.layout.align()).unwrap();
                    let result = unsafe {
                        if size >= block.layout.size() {
                            alloc.grow(block.ptr, block.layout, new_layout)
                        } else {
                            alloc.shrink(block.ptr, block.layout, new_layout)
                        }
                    };
                    let Ok(moved) = result else { continue }; // transient OOM
                    let kept = block.layout.size().min(size);
                    block.ptr = moved.cast::<u8>();
                    block.layout = new_layout;
                    prop_assert_eq!(
                        block.ptr.as_ptr() as usize % new_layout.align(), 0,
                        "alignment preserved across realloc"
                    );
                    // The first `kept` bytes must have survived the move.
                    let survived = unsafe {
                        std::slice::from_raw_parts(block.ptr.as_ptr(), kept)
                    };
                    prop_assert_eq!(
                        survived, &block.mirror[..kept],
                        "contents preserved across grow/shrink"
                    );
                    block.mirror.resize(size, 0);
                    fill(block, event);
                }
                Op::Scrub => {
                    // The scrubber claims free blocks through the ordinary
                    // allocation protocol, so a pulse in the middle of the
                    // workload must never touch a live block's contents —
                    // the cross-check below proves it didn't.
                    alloc.region().scrub_pass();
                }
            }
            // Full cross-check: any overlap between live blocks (or a stray
            // write by the facade) corrupts somebody's pattern.
            for block in &live {
                prop_assert!(block.contents_match(), "no live block was clobbered");
            }
        }
        for block in live.drain(..) {
            prop_assert!(block.contents_match());
            unsafe { alloc.deallocate(block.ptr, block.layout) };
        }
        prop_assert_eq!(alloc.allocated_bytes(), 0, "everything returned");
    }
}

/// Deterministic zero-on-reuse check across the decommit boundary: a dirty
/// block whose pages went through `scrub_pass` (claim → `madvise` →
/// release) must come back zeroed from `allocate_zeroed` and writable from
/// plain `allocate`.
#[test]
fn zero_on_reuse_across_the_decommit_boundary() {
    let alloc = facade();
    let layout = Layout::from_size_align(1 << 13, 64).unwrap();
    let dirty = alloc.allocate(layout).unwrap();
    unsafe {
        dirty.cast::<u8>().as_ptr().write_bytes(0xFF, dirty.len());
        alloc.deallocate(dirty.cast(), layout);
    }
    // Push the parked chunk back to the tree so the scrubber can claim it,
    // then decommit the idle span.
    alloc.backend().drain_cache();
    let freed = alloc.region().scrub_pass();
    assert!(freed > 0, "the dirty block's pages were decommitted");
    let mem = alloc.memory_stats();
    assert!(mem.committed_bytes < mem.managed_bytes, "{mem}");

    let clean = alloc.allocate_zeroed(layout).unwrap();
    let bytes = unsafe { std::slice::from_raw_parts(clean.cast::<u8>().as_ptr(), clean.len()) };
    assert!(
        bytes.iter().all(|&b| b == 0),
        "recycled block reads zero after the decommit boundary"
    );
    unsafe { alloc.deallocate(clean.cast(), layout) };

    let plain = alloc.allocate(layout).unwrap();
    unsafe {
        plain.cast::<u8>().as_ptr().write_bytes(0x5A, plain.len());
        assert_eq!(*plain.cast::<u8>().as_ptr().add(plain.len() - 1), 0x5A);
        alloc.deallocate(plain.cast(), layout);
    }
    assert_eq!(alloc.allocated_bytes(), 0);
}

/// Foreign threads — threads that never heard of the cache, as under a
/// `#[global_allocator]` — get slots assigned on first touch and their
/// magazines drained when they exit, via the `nbbs-cache` exit registry.
#[test]
fn foreign_threads_drain_on_exit() {
    let config = BuddyConfig::new(1 << 18, 8, 1 << 12).unwrap();
    // Direct flush policy: no depot, so cached bytes live in slots only and
    // a fully-drained cache reads exactly zero.
    let cache = Arc::new(MagazineCache::with_config(
        NbbsFourLevel::new(config),
        CacheConfig {
            flush_policy: FlushPolicy::Direct,
            ..CacheConfig::default()
        },
    ));
    let facade = Arc::new(NbbsAllocator::new(Arc::clone(&cache)));

    let handles: Vec<_> = (0..6)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let facade = Arc::clone(&facade);
            std::thread::spawn(move || {
                // What the global facade does on a thread's first touch.
                drain_on_thread_exit(Arc::clone(&cache) as Arc<dyn DrainOnExit>);
                let mut held = Vec::new();
                for i in 0..2_000usize {
                    let size = 8usize << ((i + t) % 6);
                    let layout = Layout::from_size_align(size, 8 << (i % 3)).unwrap();
                    if let Ok(block) = facade.allocate(layout) {
                        held.push((block.cast::<u8>(), layout));
                    }
                    if held.len() > 24 {
                        let (ptr, layout) = held.swap_remove(i % held.len());
                        unsafe { facade.deallocate(ptr, layout) };
                    }
                }
                for (ptr, layout) in held {
                    unsafe { facade.deallocate(ptr, layout) };
                }
                // Chunks are parked right now; the exit hook must return
                // them once this thread dies.
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(facade.allocated_bytes(), 0, "no user-live memory");
    assert_eq!(
        cache.cached_bytes(),
        0,
        "every foreign thread's slot was drained on exit"
    );
    assert_eq!(cache.backend().allocated_bytes(), 0);
    nbbs::verify::audit_empty(cache.backend()).assert_clean();
}

/// Blocks allocated on one thread and released on another flow through the
/// releasing thread's magazines — the Larson-style cross-thread pattern a
/// global allocator must handle.
#[test]
fn cross_thread_release_through_the_facade() {
    let config = BuddyConfig::new(1 << 18, 8, 1 << 12).unwrap();
    let facade = Arc::new(NbbsAllocator::new(MagazineCache::new(NbbsFourLevel::new(
        config,
    ))));
    let layout = Layout::from_size_align(192, 64).unwrap();
    let producer = Arc::clone(&facade);
    let blocks: Vec<usize> = std::thread::spawn(move || {
        (0..500)
            .map(|_| producer.allocate(layout).unwrap().cast::<u8>().as_ptr() as usize)
            .collect()
    })
    .join()
    .unwrap();
    let consumer = Arc::clone(&facade);
    std::thread::spawn(move || {
        for addr in blocks {
            let ptr = NonNull::new(addr as *mut u8).unwrap();
            unsafe { consumer.deallocate(ptr, layout) };
        }
    })
    .join()
    .unwrap();
    assert_eq!(facade.allocated_bytes(), 0);
    facade.backend().drain_cache();
    assert_eq!(facade.backend().backend().allocated_bytes(), 0);
}

/// First-principles oracle for [`BuddyBackend::granted_size_for`],
/// recomputed from the geometry parameters alone: the granted size is the
/// next power of two of the request, floored at the unit size, and `None`
/// past the per-request maximum.
fn oracle_granted(req: usize, min: usize, max: usize) -> Option<usize> {
    if req > max {
        None
    } else {
        Some(req.max(1).next_power_of_two().max(min))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `granted_size_for` agrees with the geometry oracle at and around
    /// every class boundary — on the bare tree, through the magazine
    /// cache, and on the widened `NodeSet` geometry (whose per-node
    /// request ceiling must survive the widening) — and the facade's
    /// grow/shrink in-place decisions agree with the decisions the oracle
    /// predicts, including over-aligned layouts.
    #[test]
    fn granted_size_for_matches_geometry_oracle(
        case in (1usize..(MAX * 2), 0u32..14, 1usize..(MAX * 2), 0u32..14)
    ) {
        let (old_size, old_align_log, other_size, new_align_log) = case;

        // --- 1. raw conformance, incl. exact powers and their neighbours --
        let bare = NbbsFourLevel::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap());
        let cached = MagazineCache::new(NbbsFourLevel::new(
            BuddyConfig::new(TOTAL, MIN, MAX).unwrap(),
        ));
        let node_set = {
            let config = BuddyConfig::new(TOTAL / 4, MIN, MAX / 4).unwrap();
            // 3 nodes widen to 4; the phantom tail must not change grants.
            nbbs_numa::NodeSet::with_topology(
                (0..3).map(|_| NbbsFourLevel::new(config)).collect(),
                nbbs_numa::Topology::synthetic(3),
                nbbs_numa::NodePolicy::HomeFirst,
            )
        };
        let mut probes = vec![1, MIN - 1, MIN, MIN + 1, MAX - 1, MAX, MAX + 1, old_size, other_size];
        let mut class = MIN;
        while class <= MAX {
            probes.extend([class - 1, class, class + 1]);
            class <<= 1;
        }
        for req in probes.drain(..) {
            prop_assert_eq!(
                bare.granted_size_for(req),
                oracle_granted(req, MIN, MAX),
                "bare tree diverged at request {}", req
            );
            prop_assert_eq!(
                cached.granted_size_for(req),
                oracle_granted(req, MIN, MAX),
                "cached backend diverged at request {}", req
            );
            prop_assert_eq!(
                node_set.granted_size_for(req),
                oracle_granted(req, MIN, MAX / 4),
                "widened NodeSet diverged at request {}", req
            );
        }

        // --- 2. grow/shrink in-place decisions match the oracle ----------
        let facade = facade();
        let old_align = 1usize << old_align_log;
        let new_align = 1usize << new_align_log;
        let old_layout = Layout::from_size_align(old_size, old_align).unwrap();
        let old_req = old_size.max(old_align);
        let old_granted = match oracle_granted(old_req, MIN, MAX) {
            Some(granted) => granted,
            None => {
                prop_assert!(facade.allocate(old_layout).is_err());
                return;
            }
        };

        // Grow: new size >= old size, arbitrary (possibly raised) alignment.
        let grow_size = old_size.max(other_size);
        let grow_layout = Layout::from_size_align(grow_size, new_align).unwrap();
        let grow_req = grow_size.max(new_align);
        let block = facade.allocate(old_layout).unwrap().cast::<u8>();
        let before = facade.facade_stats();
        match (unsafe { facade.grow(block, old_layout, grow_layout) }, oracle_granted(grow_req, MIN, MAX)) {
            (Ok(new_block), Some(_)) => {
                let after = facade.facade_stats();
                let expect_in_place = grow_req <= old_granted;
                prop_assert_eq!(
                    after.grows_in_place - before.grows_in_place,
                    expect_in_place as u64,
                    "grow {:?} -> {:?}: oracle says in_place={}",
                    old_layout, grow_layout, expect_in_place
                );
                prop_assert_eq!(
                    after.grows_moved - before.grows_moved,
                    !expect_in_place as u64
                );
                prop_assert_eq!(
                    (new_block.cast::<u8>() == block),
                    expect_in_place,
                    "pointer identity must mirror the in-place decision"
                );
                unsafe { facade.deallocate(new_block.cast::<u8>(), grow_layout) };
            }
            // Oversize grow rejected; the original block stays live per the
            // grow contract, so release it before the shrink phase.
            (Err(_), None) => unsafe { facade.deallocate(block, old_layout) },
            (Ok(_), None) => prop_assert!(false, "grow served a request past max_size"),
            (Err(e), Some(_)) => prop_assert!(false, "servable grow failed: {e:?}"),
        }

        // Shrink: new size <= old size, arbitrary alignment (raising it can
        // force a move even though the size shrinks).
        let shrink_size = old_size.min(other_size);
        let shrink_layout = Layout::from_size_align(shrink_size, new_align).unwrap();
        let shrink_req = shrink_size.max(new_align);
        let block = facade.allocate(old_layout).unwrap().cast::<u8>();
        let before = facade.facade_stats();
        let result = unsafe { facade.shrink(block, old_layout, shrink_layout) };
        let after = facade.facade_stats();
        let shrink_granted = oracle_granted(shrink_req, MIN, MAX).expect("shrink stays in range");
        let must_move = shrink_req > old_granted;
        let expect_in_place = !must_move && shrink_granted == old_granted;
        let new_block = result.unwrap();
        prop_assert_eq!(
            after.shrinks_in_place - before.shrinks_in_place,
            expect_in_place as u64,
            "shrink {:?} -> {:?}: oracle says in_place={}",
            old_layout, shrink_layout, expect_in_place
        );
        prop_assert_eq!(
            after.shrinks_moved - before.shrinks_moved,
            !expect_in_place as u64
        );
        prop_assert_eq!((new_block.cast::<u8>() == block), expect_in_place);
        unsafe { facade.deallocate(new_block.cast::<u8>(), shrink_layout) };
        prop_assert_eq!(facade.allocated_bytes(), 0);
    }
}
