//! Capacity exactness at the kernel-experiment configuration (Figure 12):
//! 512 MiB of page-granular memory must yield exactly 4096 blocks of 128 KiB
//! from every allocator, with no duplicates and no overlap, under both
//! sequential and concurrent allocation.

use std::collections::HashSet;
use std::sync::Arc;

use nbbs::{BuddyBackend, BuddyConfig};
use nbbs_workloads::factory::{build, AllocatorKind};

const TOTAL: usize = 512 << 20;
const PAGE: usize = 4096;
const BLOCK: usize = 128 << 10;

fn kernel_cfg() -> BuddyConfig {
    BuddyConfig::new(TOTAL, PAGE, BLOCK).unwrap()
}

#[test]
fn sequential_capacity_is_exact_for_every_allocator() {
    for &kind in AllocatorKind::kernel_comparison() {
        let alloc = build(kind, kernel_cfg());
        let mut seen = HashSet::new();
        while let Some(off) = alloc.alloc(BLOCK) {
            assert_eq!(off % BLOCK, 0, "{kind}: misaligned offset {off}");
            assert!(off + BLOCK <= TOTAL, "{kind}: offset {off} out of range");
            assert!(seen.insert(off), "{kind}: duplicate offset {off}");
            assert!(
                seen.len() <= TOTAL / BLOCK,
                "{kind}: more blocks than the region holds"
            );
        }
        assert_eq!(seen.len(), TOTAL / BLOCK, "{kind}: under-utilized capacity");
        for &off in &seen {
            alloc.dealloc(off);
        }
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}

#[test]
fn concurrent_capacity_is_exact_for_non_blocking_variants() {
    for kind in [AllocatorKind::OneLevelNb, AllocatorKind::FourLevelNb] {
        let alloc = build(kind, kernel_cfg());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(off) = alloc.alloc(BLOCK) {
                        got.push(off);
                    }
                    got
                })
            })
            .collect();
        let mut seen = HashSet::new();
        let mut all = Vec::new();
        for h in handles {
            for off in h.join().unwrap() {
                assert!(seen.insert(off), "{kind:?}: duplicate offset {off}");
                all.push(off);
            }
        }
        assert_eq!(seen.len(), TOTAL / BLOCK, "{kind:?}: wrong total capacity");
        assert_eq!(alloc.allocated_bytes(), TOTAL);
        for off in all {
            alloc.dealloc(off);
        }
        assert_eq!(alloc.allocated_bytes(), 0);
    }
}
