//! Stress and differential coverage for the `nbbs-cache` magazine layer.
//!
//! * Property-based differential tests drive identical operation sequences
//!   through a cached non-blocking backend and the sequential reference
//!   oracle, checking behavioural equivalence (success/failure, accounting,
//!   alignment, non-overlap — placement legitimately differs because the
//!   cache recycles hot chunks LIFO).
//! * The drain paths (thread-exit guard, whole-cache drain, `Drop`) are
//!   checked to return every parked chunk: after a drain the backend's own
//!   accounting and metadata audit must agree with the caller-live set
//!   alone.
//! * Concurrent stress mirrors the uncached storms: overlap-freedom in
//!   space and time, conservation, and clean metadata at quiescence —
//!   audited *through* the cache with `verify_cached`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use nbbs::verify::audit_empty;
use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel, NbbsOneLevel, ScanPolicy};
use nbbs_baselines::ReferenceBuddy;
use nbbs_cache::{verify_cached, CacheConfig, MagazineCache};
use nbbs_workloads::rng::SplitMix64;

// Generous headroom: the worst-case generated live set (~300 KiB granted)
// plus the cache's bounded working set stays far below the region size, so
// allocation success must match the oracle exactly.
const TOTAL: usize = 1 << 20;
const MIN: usize = 8;
const MAX: usize = 1 << 10;

/// Shared log of `(offset, granted, start_epoch, end_epoch)` lifetimes.
type ChunkLifetimeLog = Arc<Mutex<Vec<(usize, usize, usize, usize)>>>;

fn backend_config() -> BuddyConfig {
    BuddyConfig::new(TOTAL, MIN, MAX)
        .unwrap()
        .with_scan_policy(ScanPolicy::FirstFit)
}

fn small_cache_config() -> CacheConfig {
    CacheConfig {
        magazine_capacity: 8,
        magazine_bytes: 512,
        depot_magazines: 2,
        slots: Some(1),
        ..CacheConfig::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    Free(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1usize..=MAX).prop_map(Op::Alloc),
            2 => (0usize..64).prop_map(Op::Free),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Behavioural differential against the oracle: the cached allocator
    /// succeeds exactly when the oracle does (the workload leaves ample
    /// headroom for the bounded magazine working set), conserves accounting,
    /// and never hands out overlapping or misaligned chunks.
    #[test]
    fn cached_one_level_matches_oracle_behaviour(ops in ops_strategy()) {
        let mut oracle = ReferenceBuddy::new(backend_config());
        let cache = MagazineCache::with_config(
            NbbsOneLevel::new(backend_config()),
            small_cache_config(),
        );
        let geo = *cache.geometry();
        let mut oracle_live: Vec<usize> = Vec::new();
        let mut cache_live: Vec<(usize, usize)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Alloc(size) => {
                    let expected = oracle.alloc(size);
                    let got = cache.alloc(size);
                    prop_assert_eq!(
                        expected.is_some(),
                        got.is_some(),
                        "alloc({}) success diverged from oracle", size
                    );
                    if let Some(off) = got {
                        let granted = geo.granted_size(size).unwrap();
                        prop_assert!(off + granted <= geo.total_memory());
                        prop_assert_eq!(off % granted, 0, "misaligned cached chunk");
                        for &(o, g) in &cache_live {
                            prop_assert!(off + granted <= o || o + g <= off,
                                "cache handed out overlapping chunks");
                        }
                        cache_live.push((off, granted));
                    }
                    if let Some(off) = expected {
                        oracle_live.push(off);
                    }
                }
                Op::Free(k) => {
                    if oracle_live.is_empty() { continue; }
                    let i = k % oracle_live.len();
                    oracle.dealloc(oracle_live.swap_remove(i));
                    let (off, _) = cache_live.swap_remove(i);
                    cache.dealloc(off);
                }
            }
            prop_assert_eq!(cache.allocated_bytes(), oracle.allocated_bytes(),
                "user-visible accounting diverged from oracle");
        }
        // Quiescent audit through the cache, with the surviving live set.
        let live: BTreeMap<usize, usize> =
            cache_live.iter().map(|&(off, granted)| (off, granted)).collect();
        verify_cached(&cache, &live, true).assert_clean();
        // Release everything and drain: the backend must be pristine.
        for (off, _) in cache_live {
            cache.dealloc(off);
        }
        cache.drain_all();
        prop_assert_eq!(cache.backend().allocated_bytes(), 0);
        audit_empty(cache.backend()).assert_clean();
    }

    /// The thread-exit drain path: every operation sequence, executed on a
    /// worker thread holding a drain guard, leaves no chunk parked in the
    /// worker's slot once the thread exits; a final depot drain returns the
    /// backend to exactly the caller-live set.
    #[test]
    fn thread_exit_drain_leaks_nothing(ops in ops_strategy()) {
        let cache = Arc::new(MagazineCache::with_config(
            NbbsFourLevel::new(backend_config()),
            CacheConfig {
                magazine_capacity: 8,
                magazine_bytes: 512,
                depot_magazines: 2,
                slots: Some(64),
                ..CacheConfig::default()
            },
        ));
        let worker = {
            let cache = Arc::clone(&cache);
            let ops = ops.clone();
            std::thread::spawn(move || {
                let _guard = cache.thread_guard();
                let mut live: Vec<(usize, usize)> = Vec::new();
                for op in ops {
                    match op {
                        Op::Alloc(size) => {
                            if let Some(off) = cache.alloc(size) {
                                let granted = cache.geometry().granted_size(size).unwrap();
                                live.push((off, granted));
                            }
                        }
                        Op::Free(k) => {
                            if live.is_empty() { continue; }
                            let (off, _) = live.swap_remove(k % live.len());
                            cache.dealloc(off);
                        }
                    }
                }
                live
            })
        };
        let survivors = worker.join().unwrap();
        // The guard drained the worker's slot; only depot magazines (full
        // ones parked by overflow) may still hold chunks.
        let expected: usize = survivors.iter().map(|&(_, g)| g).sum();
        prop_assert_eq!(cache.allocated_bytes(), expected);
        let live: BTreeMap<usize, usize> = survivors.iter().copied().collect();
        verify_cached(&cache, &live, true).assert_clean();
        cache.drain_all();
        prop_assert_eq!(cache.backend().allocated_bytes(), expected,
            "drain returned a caller-live chunk (or leaked a parked one)");
        for (off, _) in survivors {
            cache.dealloc(off);
        }
        cache.drain_all();
        prop_assert_eq!(cache.backend().allocated_bytes(), 0);
        audit_empty(cache.backend()).assert_clean();
    }
}

/// Concurrent storm through the cache: chunks never overlap in space while
/// their lifetimes overlap in time, and the backend audits clean at
/// quiescence once drained.
#[test]
fn concurrent_cached_chunks_never_overlap_in_space_and_time() {
    for slots in [1usize, 16] {
        let cache = Arc::new(MagazineCache::with_config(
            NbbsFourLevel::new(BuddyConfig::new(1 << 16, 8, 1 << 10).unwrap()),
            CacheConfig {
                magazine_capacity: 8,
                magazine_bytes: 1 << 10,
                slots: Some(slots),
                ..CacheConfig::default()
            },
        ));
        let epoch = Arc::new(AtomicUsize::new(0));
        let log: ChunkLifetimeLog = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let epoch = Arc::clone(&epoch);
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let _guard = cache.thread_guard();
                    let mut rng = SplitMix64::new(0xCAC4E ^ t as u64);
                    let mut held: Vec<(usize, usize, usize)> = Vec::new();
                    for _ in 0..2_000 {
                        if held.is_empty() || rng.next_u64() & 1 == 0 {
                            let size = 8usize << rng.next_below(8);
                            if let Some(off) = cache.alloc(size) {
                                let granted = cache.geometry().granted_size(size).unwrap();
                                let start = epoch.fetch_add(1, Ordering::SeqCst);
                                held.push((off, granted, start));
                            }
                        } else {
                            let (off, granted, start) =
                                held.swap_remove(rng.next_below(held.len()));
                            let end = epoch.fetch_add(1, Ordering::SeqCst);
                            cache.dealloc(off);
                            log.lock().unwrap().push((off, granted, start, end));
                        }
                    }
                    let end = epoch.fetch_add(1, Ordering::SeqCst);
                    let mut l = log.lock().unwrap();
                    for (off, granted, start) in held {
                        cache.dealloc(off);
                        l.push((off, granted, start, end));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let entries = log.lock().unwrap();
        for a in entries.iter() {
            for b in entries.iter() {
                if std::ptr::eq(a, b) {
                    continue;
                }
                let space_overlap = a.0 < b.0 + b.1 && b.0 < a.0 + a.1;
                let time_overlap = a.2 > b.2 && a.2 < b.3;
                assert!(
                    !(space_overlap && time_overlap),
                    "slots={slots}: cached chunk {a:?} overlaps {b:?} in space and time"
                );
            }
        }
        drop(entries);
        assert_eq!(cache.allocated_bytes(), 0);
        cache.drain_all();
        assert_eq!(cache.backend().allocated_bytes(), 0);
        audit_empty(cache.backend()).assert_clean();
    }
}

/// Remote (cross-thread) frees through the cache: producers allocate,
/// consumers release, so magazines fill on threads that never allocated.
#[test]
fn cached_remote_frees_conserve_and_audit_clean() {
    use std::sync::mpsc;
    let cache = Arc::new(MagazineCache::new(NbbsOneLevel::new(
        BuddyConfig::new(1 << 16, 8, 1 << 10).unwrap(),
    )));
    let pairs = 3;
    let iters = 1_500usize;
    let mut handles = Vec::new();
    for p in 0..pairs {
        let (tx, rx) = mpsc::channel::<usize>();
        let producer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.thread_guard();
                let mut rng = SplitMix64::new(p as u64);
                for _ in 0..iters {
                    let size = 8usize << rng.next_below(4);
                    loop {
                        if let Some(off) = cache.alloc(size) {
                            tx.send(off).unwrap();
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.thread_guard();
                for _ in 0..iters {
                    let off = rx.recv().unwrap();
                    cache.dealloc(off);
                }
            })
        };
        handles.push(producer);
        handles.push(consumer);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cache.allocated_bytes(), 0, "cached remote frees leaked");
    assert!(
        cache.snapshot().alloc_requests() > 0,
        "cache saw no traffic"
    );
    cache.drain_all();
    assert_eq!(cache.backend().allocated_bytes(), 0);
    audit_empty(cache.backend()).assert_clean();
}

/// The cache must keep offering the backend's full capacity: after heavy
/// cached traffic and a drain, the whole region is allocatable as maximal
/// chunks again.
#[test]
fn drained_cache_restores_full_backend_capacity() {
    let cache = MagazineCache::new(NbbsFourLevel::new(
        BuddyConfig::new(1 << 16, 8, 1 << 12).unwrap(),
    ));
    let mut rng = SplitMix64::new(7);
    let mut held = Vec::new();
    for _ in 0..5_000 {
        if held.is_empty() || rng.next_u64() & 1 == 0 {
            let size = 8usize << rng.next_below(9);
            if let Some(off) = cache.alloc(size) {
                held.push(off);
            }
        } else {
            let off = held.swap_remove(rng.next_below(held.len()));
            cache.dealloc(off);
        }
    }
    for off in held {
        cache.dealloc(off);
    }
    cache.drain_all();
    let max = cache.max_size();
    let mut maximal = Vec::new();
    for _ in 0..cache.total_memory() / max {
        maximal.push(
            cache
                .backend()
                .alloc(max)
                .expect("cache drain lost backend capacity"),
        );
    }
    for off in maximal {
        cache.backend().dealloc(off);
    }
}

/// `drain_cache` must see through nesting: the outer cache drains its own
/// parked chunks first (they land in the inner cache's magazines), then the
/// inner cache drains to the tree — the opposite order would leave the
/// outer's chunks re-parked inside a freshly-drained inner cache.
#[test]
fn nested_cache_drain_reaches_the_tree() {
    let nested = MagazineCache::with_config_and_name(
        MagazineCache::new(NbbsFourLevel::new(
            BuddyConfig::new(1 << 16, 8, 1 << 10).unwrap(),
        )),
        CacheConfig::default(),
        "cached-cached-4lvl-nb",
    );
    let mut held = Vec::new();
    for _ in 0..64 {
        if let Some(off) = nested.alloc(64) {
            held.push(off);
        }
    }
    for off in held {
        nested.dealloc(off);
    }
    nested.drain_cache();
    let tree = nested.backend().backend();
    assert_eq!(
        tree.allocated_bytes(),
        0,
        "nested drain left chunks parked in the inner cache"
    );
    audit_empty(tree).assert_clean();
}

/// Depot shard routing: a thread exchanges magazines only with its own
/// slot group's shard — parked magazines land in the calling thread's shard
/// and every other shard stays empty.
#[test]
fn overflow_parks_only_in_the_callers_shard() {
    let cache = MagazineCache::with_config(
        NbbsOneLevel::new(backend_config()),
        CacheConfig {
            magazine_capacity: 4,
            magazine_bytes: 32,
            depot_magazines: 8,
            slots: Some(4),
            depot_shards: Some(4),
            ..CacheConfig::default()
        },
    );
    assert_eq!(cache.depot_shard_count(), 4);
    let home = cache.current_shard();
    assert!(home < 4);
    assert_eq!(home, cache.current_shard(), "shard routing is stable");
    // Overflow enough same-class chunks to park several full magazines.
    let offs: Vec<_> = (0..32).filter_map(|_| cache.alloc(8)).collect();
    assert_eq!(offs.len(), 32);
    for off in offs {
        cache.dealloc(off);
    }
    assert!(
        cache.depot_parked_magazines(home) > 0,
        "nothing parked in the caller's shard"
    );
    for shard in 0..cache.depot_shard_count() {
        if shard != home {
            assert_eq!(
                cache.depot_parked_magazines(shard),
                0,
                "magazine leaked into foreign shard {shard}"
            );
        }
    }
    // And the exchange comes back from the same shard.
    cache.drain_current_thread();
    let exchanges_before = cache.snapshot().depot_exchanges;
    let again: Vec<_> = (0..4).filter_map(|_| cache.alloc(8)).collect();
    assert!(cache.snapshot().depot_exchanges > exchanges_before);
    for off in again {
        cache.dealloc(off);
    }
}

/// Adaptive growth converges: a repeated burst that overruns the initial
/// magazine geometry grows the class's capacity until the burst parks
/// entirely — the last repetitions flush nothing to the backend.
#[test]
fn adaptive_growth_converges_on_repeated_bursts() {
    let cache = MagazineCache::with_config(
        NbbsOneLevel::new(backend_config()),
        CacheConfig {
            magazine_capacity: 4,
            magazine_bytes: 32,
            depot_magazines: 1,
            slots: Some(1),
            max_magazine_capacity: 128,
            ..CacheConfig::default()
        },
    );
    let class = 0;
    let initial = cache.magazine_capacity(class);
    assert_eq!(initial, 4);
    let mut flushed_per_burst = Vec::new();
    for _ in 0..10 {
        let before = cache.snapshot().flushed;
        let offs: Vec<_> = (0..100).filter_map(|_| cache.alloc(8)).collect();
        assert_eq!(offs.len(), 100);
        for off in offs {
            cache.dealloc(off);
        }
        flushed_per_burst.push(cache.snapshot().flushed - before);
    }
    let snap = cache.snapshot();
    assert!(snap.resize_grows > 0, "no growth despite sustained spills");
    assert!(
        cache.magazine_capacity(class) > initial,
        "capacity did not grow"
    );
    assert_eq!(
        *flushed_per_burst.last().unwrap(),
        0,
        "burst still spills after convergence: {flushed_per_burst:?}"
    );
    assert!(
        flushed_per_burst[0] > 0,
        "the first burst should overrun the initial geometry"
    );
}

/// Byte-budget pressure shrinks capacities: with a budget far below the
/// burst's footprint, parking is refused and the class's capacity decays
/// instead of growing.
#[test]
fn budget_pressure_shrinks_capacities() {
    let cache = MagazineCache::with_config(
        NbbsOneLevel::new(backend_config()),
        CacheConfig {
            magazine_capacity: 16,
            magazine_bytes: 16 * 8,
            depot_magazines: 8,
            slots: Some(1),
            cache_bytes_budget: Some(256),
            ..CacheConfig::default()
        },
    );
    let class = 0;
    let initial = cache.magazine_capacity(class);
    assert_eq!(initial, 16);
    for _ in 0..6 {
        let offs: Vec<_> = (0..120).filter_map(|_| cache.alloc(8)).collect();
        for off in offs {
            cache.dealloc(off);
        }
    }
    let snap = cache.snapshot();
    assert!(snap.resize_shrinks > 0, "no shrink despite budget pressure");
    assert!(
        cache.magazine_capacity(class) < initial,
        "capacity did not shrink under pressure"
    );
    assert!(
        cache.cached_bytes() <= 256 + 16 * 8 * 2,
        "parked bytes far exceed the budget: {}",
        cache.cached_bytes()
    );
    cache.drain_all();
    assert_eq!(cache.cached_bytes(), 0);
    audit_empty(cache.backend()).assert_clean();
}

/// `drain_all` and thread-exit drains see every shard: after concurrent
/// traffic spread over several slot groups, a full drain returns the
/// backend to pristine and leaves no magazine parked anywhere.
#[test]
fn drains_cover_every_depot_shard() {
    let cache = Arc::new(MagazineCache::with_config(
        NbbsFourLevel::new(backend_config()),
        CacheConfig {
            magazine_capacity: 8,
            magazine_bytes: 64,
            depot_magazines: 16,
            slots: Some(8),
            depot_shards: Some(8),
            ..CacheConfig::default()
        },
    ));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.thread_guard();
                let shard = cache.current_shard();
                let mut rng = SplitMix64::new(0xD3A1 ^ t as u64);
                let mut held = Vec::new();
                for _ in 0..3_000 {
                    if held.is_empty() || rng.next_u64() & 3 != 0 {
                        let size = 8usize << rng.next_below(4);
                        if let Some(off) = cache.alloc(size) {
                            held.push(off);
                        }
                    } else {
                        let off = held.swap_remove(rng.next_below(held.len()));
                        cache.dealloc(off);
                    }
                }
                for off in held {
                    cache.dealloc(off);
                }
                shard
            })
        })
        .collect();
    let shards_used: std::collections::HashSet<usize> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        !shards_used.is_empty(),
        "threads reported no shard assignment"
    );
    // Thread guards drained the slots; the depot shards may still hold
    // parked magazines.  allocated_bytes must already be zero (cache-aware).
    assert_eq!(cache.allocated_bytes(), 0);
    cache.drain_all();
    for shard in 0..cache.depot_shard_count() {
        assert_eq!(
            cache.depot_parked_magazines(shard),
            0,
            "drain_all left a magazine in shard {shard}"
        );
    }
    assert_eq!(cache.cached_bytes(), 0);
    assert_eq!(cache.backend().allocated_bytes(), 0);
    audit_empty(cache.backend()).assert_clean();
}

/// The per-slot/per-shard byte counters stay exact under concurrent shard
/// exchanges: at quiescence, `cached_bytes` equals exactly what the backend
/// still considers allocated (nothing is caller-live here).
#[test]
fn cached_bytes_is_exact_after_concurrent_exchanges() {
    let cache = Arc::new(MagazineCache::with_config(
        NbbsFourLevel::new(backend_config()),
        CacheConfig {
            magazine_capacity: 8,
            magazine_bytes: 64,
            depot_magazines: 4,
            slots: Some(4),
            depot_shards: Some(2),
            ..CacheConfig::default()
        },
    ));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xB17E5 ^ t as u64);
                let mut held = Vec::new();
                for _ in 0..5_000 {
                    if held.is_empty() || rng.next_u64() & 1 == 0 {
                        if let Some(off) = cache.alloc(8 << rng.next_below(3)) {
                            held.push(off);
                        }
                    } else {
                        let off = held.swap_remove(rng.next_below(held.len()));
                        cache.dealloc(off);
                    }
                }
                for off in held {
                    cache.dealloc(off);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Quiescent: every chunk the backend holds is parked in the cache, and
    // the summed per-slot/per-shard counters must agree byte for byte.
    assert_eq!(cache.cached_bytes(), cache.backend().allocated_bytes());
    let counted: usize = cache.cached_chunks().iter().map(|&(_, s)| s).sum();
    assert_eq!(cache.cached_bytes(), counted);
    assert_eq!(cache.allocated_bytes(), 0);
}

/// Hit-rate sanity on a recycling workload: most operations must bypass the
/// backend, and backend op-counters (when compiled in) must agree.
#[test]
fn recycling_workload_mostly_hits() {
    let cache = MagazineCache::new(NbbsOneLevel::new(backend_config()));
    // Warm up one magazine, then recycle the same class.
    let warm: Vec<_> = (0..8).filter_map(|_| cache.alloc(64)).collect();
    for off in warm {
        cache.dealloc(off);
    }
    for _ in 0..1_000 {
        let off = cache.alloc(64).unwrap();
        cache.dealloc(off);
    }
    let s = cache.snapshot();
    assert!(
        s.hit_rate() > 0.95,
        "recycling workload should almost always hit, got {}",
        s.hit_rate()
    );
    if nbbs::OpStats::enabled() {
        let backend_ops = cache.backend().stats();
        assert!(
            backend_ops.allocs + backend_ops.frees < 2 * 1_008,
            "backend saw traffic the cache should have absorbed"
        );
    }
}
