//! Integration tests for the paper's safety properties S1 and S2
//! (appendix of the paper), checked dynamically through `nbbs::verify`.
//!
//! * S1 — a successful allocation returns a non-allocated, correctly-sized,
//!   correctly-aligned set of addresses;
//! * S2 — a correct free releases exactly the memory targeted by the request.
//!
//! The tests drive long random operation sequences on both non-blocking
//! variants while maintaining the ground-truth live set, and audit the
//! allocator metadata at every quiescent point.

use std::collections::BTreeMap;

use nbbs::verify::{audit, audit_empty};
use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel, NbbsOneLevel, ScanPolicy, TreeInspect};
use nbbs_workloads::rng::SplitMix64;

fn config(total: usize, min: usize, max: usize) -> BuddyConfig {
    BuddyConfig::new(total, min, max).unwrap()
}

/// Runs a random alloc/free sequence on `alloc`, auditing after every
/// `audit_every` operations and at the end.
fn drive_and_audit<A>(alloc: &A, seed: u64, steps: usize, audit_every: usize)
where
    A: BuddyBackend + TreeInspect,
{
    let geo = *alloc.geometry();
    let mut rng = SplitMix64::new(seed);
    let mut live: BTreeMap<usize, usize> = BTreeMap::new();
    for step in 0..steps {
        let do_alloc = live.is_empty() || !rng.next_u64().is_multiple_of(3);
        if do_alloc {
            let size = geo.min_size() << rng.next_below(6);
            if let Some(off) = alloc.alloc(size) {
                // S1: the chunk must not overlap any live chunk; `audit`
                // re-checks this, but catching it here gives a precise step.
                for (&o, &s) in &live {
                    let g = geo.granted_size(s).unwrap();
                    let granted = geo.granted_size(size).unwrap();
                    assert!(
                        off + granted <= o || o + g <= off,
                        "S1 violated at step {step}: [{off}, +{granted}) overlaps [{o}, +{g})"
                    );
                }
                live.insert(off, size);
            }
        } else {
            let idx = rng.next_below(live.len());
            let (&off, _) = live.iter().nth(idx).unwrap();
            let size = live.remove(&off).unwrap();
            alloc.dealloc(off);
            // S2: after the free, an allocation of the same size must be able
            // to reuse that chunk eventually; at minimum the accounting drops
            // by exactly the granted size.
            let _ = size;
        }
        if step % audit_every == 0 {
            audit(alloc, &live, true).assert_clean();
            let expected: usize = live
                .iter()
                .map(|(_, &s)| geo.granted_size(s).unwrap())
                .sum();
            assert_eq!(
                alloc.allocated_bytes(),
                expected,
                "accounting drift at step {step}"
            );
        }
    }
    for (&off, _) in live.clone().iter() {
        alloc.dealloc(off);
    }
    audit_empty(alloc).assert_clean();
    assert_eq!(alloc.allocated_bytes(), 0);
}

#[test]
fn one_level_satisfies_safety_properties_scattered() {
    let alloc = NbbsOneLevel::new(config(1 << 16, 8, 1 << 12));
    drive_and_audit(&alloc, 1, 6_000, 97);
}

#[test]
fn one_level_satisfies_safety_properties_first_fit() {
    let alloc =
        NbbsOneLevel::new(config(1 << 16, 8, 1 << 12).with_scan_policy(ScanPolicy::FirstFit));
    drive_and_audit(&alloc, 2, 6_000, 97);
}

#[test]
fn four_level_satisfies_safety_properties_scattered() {
    let alloc = NbbsFourLevel::new(config(1 << 16, 8, 1 << 12));
    drive_and_audit(&alloc, 3, 6_000, 97);
}

#[test]
fn four_level_satisfies_safety_properties_first_fit() {
    let alloc =
        NbbsFourLevel::new(config(1 << 16, 8, 1 << 12).with_scan_policy(ScanPolicy::FirstFit));
    drive_and_audit(&alloc, 4, 6_000, 97);
}

#[test]
fn safety_holds_with_restricted_max_size() {
    // max_level > 0: climbs stop early; safety must still hold.
    let alloc = NbbsOneLevel::new(config(1 << 16, 8, 1 << 9));
    drive_and_audit(&alloc, 5, 4_000, 61);
    let alloc = NbbsFourLevel::new(config(1 << 16, 8, 1 << 9));
    drive_and_audit(&alloc, 6, 4_000, 61);
}

#[test]
fn safety_holds_on_tiny_trees() {
    for (total, min) in [(64usize, 8usize), (128, 8), (512, 64), (1024, 8)] {
        let alloc = NbbsOneLevel::new(config(total, min, total));
        drive_and_audit(&alloc, total as u64, 1_500, 37);
        let alloc = NbbsFourLevel::new(config(total, min, total));
        drive_and_audit(&alloc, total as u64 + 1, 1_500, 37);
    }
}

#[test]
fn quiescent_concurrent_state_audits_clean() {
    use std::sync::Arc;
    // After a concurrent storm completes, the tree must audit clean against
    // the surviving live set (here: empty).
    for variant in 0..2 {
        let alloc: Arc<dyn AuditableBackend> = if variant == 0 {
            Arc::new(NbbsOneLevel::new(config(1 << 14, 8, 1 << 10)))
        } else {
            Arc::new(NbbsFourLevel::new(config(1 << 14, 8, 1 << 10)))
        };
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    let mut rng = SplitMix64::new(0xAB ^ t as u64);
                    let mut live = Vec::new();
                    for _ in 0..4_000 {
                        if live.is_empty() || rng.next_u64() & 1 == 0 {
                            let size = 8usize << rng.next_below(7);
                            if let Some(off) = alloc.backend().alloc(size) {
                                live.push(off);
                            }
                        } else {
                            let off = live.swap_remove(rng.next_below(live.len()));
                            alloc.backend().dealloc(off);
                        }
                    }
                    for off in live {
                        alloc.backend().dealloc(off);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        alloc.audit_empty_clean();
        assert_eq!(alloc.backend().allocated_bytes(), 0);
    }
}

/// Object-safe helper so the concurrent test can treat both variants
/// uniformly while still reaching `TreeInspect`.
trait AuditableBackend: Send + Sync {
    fn backend(&self) -> &dyn BuddyBackend;
    fn audit_empty_clean(&self);
}

impl AuditableBackend for NbbsOneLevel {
    fn backend(&self) -> &dyn BuddyBackend {
        self
    }
    fn audit_empty_clean(&self) {
        audit_empty(self).assert_clean();
    }
}

impl AuditableBackend for NbbsFourLevel {
    fn backend(&self) -> &dyn BuddyBackend {
        self
    }
    fn audit_empty_clean(&self) {
        audit_empty(self).assert_clean();
    }
}
