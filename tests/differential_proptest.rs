//! Property-based differential testing of every allocator against the
//! sequential reference oracle.
//!
//! Strategy: generate an arbitrary sequence of allocation/release commands
//! (with sizes spanning the whole configuration range, including invalid
//! oversized requests) and apply it simultaneously to the oracle and to the
//! implementation under test.  For the deterministic first-fit non-blocking
//! variants we require *identical offsets*; for the other allocators we only
//! require behavioural equivalence (same success/failure, no overlap,
//! conserved accounting) because their placement policies legitimately
//! differ.

use proptest::prelude::*;

use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel, NbbsOneLevel, ScanPolicy};
use nbbs_baselines::{CloudwuBuddy, LinuxBuddy, ReferenceBuddy};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes.
    Alloc(usize),
    /// Free the k-th oldest live allocation (modulo the live count).
    Free(usize),
}

fn op_strategy(max_size: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..=max_size * 2).prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

fn ops_strategy(max_size: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(max_size), 1..400)
}

const TOTAL: usize = 1 << 14;
const MIN: usize = 8;
const MAX: usize = 1 << 11;

fn first_fit_config() -> BuddyConfig {
    BuddyConfig::new(TOTAL, MIN, MAX)
        .unwrap()
        .with_scan_policy(ScanPolicy::FirstFit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 1-level non-blocking buddy with first-fit scanning is offset-for-
    /// offset identical to the sequential oracle.
    #[test]
    fn one_level_matches_oracle(ops in ops_strategy(MAX)) {
        let mut oracle = ReferenceBuddy::new(first_fit_config());
        let nb = NbbsOneLevel::new(first_fit_config());
        let mut live: Vec<usize> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let expected = oracle.alloc(size);
                    let got = nb.alloc(size);
                    prop_assert_eq!(expected, got, "alloc({}) diverged", size);
                    if let Some(off) = got {
                        live.push(off);
                    }
                }
                Op::Free(k) => {
                    if live.is_empty() { continue; }
                    let off = live.remove(k % live.len());
                    oracle.dealloc(off);
                    nb.dealloc(off);
                }
            }
            prop_assert_eq!(oracle.allocated_bytes(), nb.allocated_bytes());
        }
    }

    /// The 4-level variant is offset-for-offset identical to the oracle too.
    #[test]
    fn four_level_matches_oracle(ops in ops_strategy(MAX)) {
        let mut oracle = ReferenceBuddy::new(first_fit_config());
        let nb = NbbsFourLevel::new(first_fit_config());
        let mut live: Vec<usize> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let expected = oracle.alloc(size);
                    let got = nb.alloc(size);
                    prop_assert_eq!(expected, got, "alloc({}) diverged", size);
                    if let Some(off) = got {
                        live.push(off);
                    }
                }
                Op::Free(k) => {
                    if live.is_empty() { continue; }
                    let off = live.remove(k % live.len());
                    oracle.dealloc(off);
                    nb.dealloc(off);
                }
            }
            prop_assert_eq!(oracle.allocated_bytes(), nb.allocated_bytes());
        }
    }

    /// Behavioural equivalence for the blocking baselines: allocations
    /// succeed at least whenever the oracle can prove a chunk of that order
    /// is available to *some* placement policy (success may differ because
    /// placement differs and affects later fragmentation), no live chunks
    /// ever overlap, chunks are size-aligned, and accounting is conserved.
    #[test]
    fn baselines_respect_buddy_invariants(ops in ops_strategy(MAX)) {
        let allocators: Vec<Box<dyn BuddyBackend>> = vec![
            Box::new(CloudwuBuddy::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
            Box::new(LinuxBuddy::new(BuddyConfig::new(TOTAL, 64, MAX).unwrap())),
            Box::new(NbbsOneLevel::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
            Box::new(NbbsFourLevel::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
        ];
        for alloc in &allocators {
            let geo = *alloc.geometry();
            let mut live: Vec<(usize, usize)> = Vec::new();
            let mut expected_bytes = 0usize;
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        if size > geo.max_size() {
                            prop_assert_eq!(alloc.alloc(size), None,
                                "{} accepted an oversized request", alloc.name());
                            continue;
                        }
                        if let Some(off) = alloc.alloc(size) {
                            let granted = geo.granted_size(size).unwrap();
                            prop_assert!(off + granted <= geo.total_memory());
                            prop_assert_eq!(off % granted, 0,
                                "{}: offset {} not aligned to {}", alloc.name(), off, granted);
                            for &(o, g) in &live {
                                prop_assert!(off + granted <= o || o + g <= off,
                                    "{}: overlap", alloc.name());
                            }
                            live.push((off, granted));
                            expected_bytes += granted;
                        }
                    }
                    Op::Free(k) => {
                        if live.is_empty() { continue; }
                        let (off, granted) = live.remove(k % live.len());
                        alloc.dealloc(off);
                        expected_bytes -= granted;
                    }
                }
                prop_assert_eq!(alloc.allocated_bytes(), expected_bytes,
                    "{}: accounting drift", alloc.name());
            }
            for (off, _) in live {
                alloc.dealloc(off);
            }
            prop_assert_eq!(alloc.allocated_bytes(), 0, "{} leaked", alloc.name());
        }
    }

    /// After any sequence that ends with everything freed, the full region is
    /// allocatable again as one maximal chunk (complete coalescing).
    #[test]
    fn full_coalescing_after_drain(ops in ops_strategy(MAX)) {
        let allocators: Vec<Box<dyn BuddyBackend>> = vec![
            Box::new(NbbsOneLevel::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
            Box::new(NbbsFourLevel::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
            Box::new(CloudwuBuddy::new(BuddyConfig::new(TOTAL, MIN, MAX).unwrap())),
        ];
        for alloc in &allocators {
            let mut live: Vec<usize> = Vec::new();
            for op in &ops {
                match *op {
                    Op::Alloc(size) => {
                        if let Some(off) = alloc.alloc(size) {
                            live.push(off);
                        }
                    }
                    Op::Free(k) => {
                        if live.is_empty() { continue; }
                        let off = live.remove(k % live.len());
                        alloc.dealloc(off);
                    }
                }
            }
            for off in live {
                alloc.dealloc(off);
            }
            // MAX is the largest single request; all of them must fit back to
            // back, proving that every buddy pair merged back.
            let mut maximal = Vec::new();
            for _ in 0..TOTAL / MAX {
                let off = alloc.alloc(MAX);
                prop_assert!(off.is_some(), "{}: lost capacity after drain", alloc.name());
                maximal.push(off.unwrap());
            }
            for off in maximal {
                alloc.dealloc(off);
            }
        }
    }
}
