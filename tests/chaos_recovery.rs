//! Panic-safety integration tests for the magazine cache: a thread that
//! dies mid-task — by its own panic or by an injected one from
//! `nbbs-chaos` — must never wedge a slot, strand chunks, or double-free.
//! Every chunk is either returned by the thread-exit drain or left
//! recoverable by a whole-cache drain, proven by the conservation audit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel};
use nbbs_cache::{drain_on_thread_exit, verify_cached_empty, DrainOnExit, MagazineCache};
use nbbs_chaos::{FaultInjecting, FaultPlan};
use nbbs_workloads::rng::SplitMix64;

const TOTAL: usize = 1 << 18;
const MIN: usize = 64;
const MAX: usize = 1 << 14;

fn cfg() -> BuddyConfig {
    BuddyConfig::new(TOTAL, MIN, MAX).unwrap()
}

/// A thread panics while its slot magazines are loaded with recycled
/// chunks.  The registered exit drain runs during the panic unwind (TLS
/// destructors fire on unwind too), so after join the chunks are back in
/// the depot or tree — a whole-cache drain plus the audit proves nothing
/// was stranded and nothing double-freed.
#[test]
fn panicking_thread_with_loaded_magazines_leaves_chunks_recoverable() {
    let cache = Arc::new(MagazineCache::new(NbbsFourLevel::new(cfg())));
    let worker = Arc::clone(&cache);
    let handle = std::thread::spawn(move || {
        drain_on_thread_exit(worker.clone() as Arc<dyn DrainOnExit>);
        // Load the magazines: allocate a spread of classes, free them all
        // so they park as recycled chunks in this thread's slot.
        let mut rng = SplitMix64::new(42);
        let offs: Vec<(usize, usize)> = (0..256)
            .filter_map(|_| {
                let size = MIN << rng.next_below(8);
                worker.alloc(size).map(|off| (off, size))
            })
            .collect();
        assert!(!offs.is_empty());
        for &(off, _) in &offs {
            worker.dealloc(off);
        }
        assert!(
            worker.cached_bytes() > 0,
            "magazines should be loaded before the panic"
        );
        panic!("worker dies while holding loaded magazines");
    });
    assert!(handle.join().is_err(), "the worker must have panicked");

    cache.drain_all();
    verify_cached_empty(&cache).assert_clean();
    assert_eq!(cache.allocated_bytes(), 0);
    // Nothing stranded: the whole region coalesces back to max-class blocks.
    let blocks: Vec<_> = (0..TOTAL / MAX)
        .map(|_| cache.alloc(MAX).expect("full capacity must be restored"))
        .collect();
    for off in blocks {
        cache.dealloc(off);
    }
}

/// Injected panics firing *inside* cache refill/flush loops strand the
/// in-flight chunks on the orphan list; the next toucher (here: the final
/// whole-cache drain) rescues them.  The audit plus a full-capacity probe
/// prove no chunk was lost and none was freed twice.
#[test]
fn injected_panics_during_magazine_traffic_are_rescued() {
    let injected =
        FaultInjecting::new(NbbsFourLevel::new(cfg()), FaultPlan::panic_storm(0xBAD5EED));
    let cache = MagazineCache::new(injected);
    let mut rng = SplitMix64::new(0xBAD5EED);
    let mut live: Vec<usize> = Vec::new();
    let mut panics = 0u32;
    for _ in 0..20_000 {
        if live.is_empty() || rng.next_u64() & 1 == 0 {
            let size = MIN << rng.next_below(8);
            match catch_unwind(AssertUnwindSafe(|| cache.alloc(size))) {
                Ok(Some(off)) => live.push(off),
                Ok(None) => {}
                Err(_) => panics += 1,
            }
        } else {
            let off = live.swap_remove(rng.next_below(live.len()));
            // The cache absorbs the chunk before any fault-gated backend
            // call, so a panicking free still counts as freed.
            if catch_unwind(AssertUnwindSafe(|| cache.dealloc(off))).is_err() {
                panics += 1;
            }
        }
    }
    assert!(panics > 0, "the storm should have injected panics");

    cache.backend().disarm();
    for off in live {
        cache.dealloc(off);
    }
    cache.drain_all();
    verify_cached_empty(&cache).assert_clean();
    assert_eq!(cache.allocated_bytes(), 0);
    let whole: Vec<_> = (0..TOTAL / MAX)
        .map(|_| cache.alloc(MAX).expect("no capacity may stay stranded"))
        .collect();
    for off in whole {
        cache.dealloc(off);
    }
}
