//! Integration tests of the full slab stack:
//! `NbbsAllocator<MagazineCache<SlabBackend<NbbsFourLevel>>>` against the
//! System-mirror oracle (the `tests/facade_alloc.rs` harness re-targeted at
//! the slab-fronted backend, with the size mix biased below the slab
//! cutoff), cross-thread frees routed back to the owning slab page, fault
//! storms during page grants, and composition of the slab under the
//! `Recorded`, `FaultInjecting` and `NodeSet` wrappers.

use std::alloc::Layout;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use nbbs::{AllocError, BuddyBackend, BuddyConfig, NbbsFourLevel};
use nbbs_alloc::NbbsAllocator;
use nbbs_cache::MagazineCache;
use nbbs_chaos::{FaultInjecting, FaultPlan};
use nbbs_numa::{NodePolicy, NodeSet, Topology};
use nbbs_obs::{OpKind, Recorded, Recorder};
use nbbs_slab::{SlabBackend, SlabConfig};
use nbbs_workloads::rng::SplitMix64;

const TOTAL: usize = 1 << 20;
const MIN: usize = 64;
const MAX: usize = 1 << 14;

fn cfg() -> BuddyConfig {
    BuddyConfig::new(TOTAL, MIN, MAX).unwrap()
}

fn slab_config() -> SlabConfig {
    SlabConfig {
        cutoff: 2048,
        page_size: 8 << 10,
        keep_empty_pages: 2,
    }
}

fn slab() -> SlabBackend<NbbsFourLevel> {
    SlabBackend::with_config_and_name(NbbsFourLevel::new(cfg()), slab_config(), "slab-4lvl-nb")
}

fn slab_stack() -> NbbsAllocator<MagazineCache<SlabBackend<NbbsFourLevel>>> {
    NbbsAllocator::new(MagazineCache::new(slab()))
}

/// Drains the whole stack (magazines, then warm slab pages) and proves the
/// innermost tree is back to a fully-coalesced empty state.
fn assert_stack_quiescent(stack: &NbbsAllocator<MagazineCache<SlabBackend<NbbsFourLevel>>>) {
    assert_eq!(stack.allocated_bytes(), 0, "no user-live memory");
    stack.backend().drain_cache();
    assert_eq!(stack.backend().cached_bytes(), 0, "magazines fully drained");
    let tree = stack.backend().backend().inner();
    assert_eq!(tree.allocated_bytes(), 0, "slab retired every page");
    nbbs::verify::audit_empty(tree).assert_clean();
}

/// One step of a generated layout workload (mirrors `facade_alloc.rs`, with
/// the size mix weighted to the slab's small-object range).
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        size: usize,
        align_log: u32,
        zeroed: bool,
    },
    Free(usize),
    Realloc {
        idx: usize,
        size: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Mostly sizes at or below the 2 KiB cutoff so the slab classes do
        // the serving; the tail crosses into buddy passthrough territory.
        4 => (0u64..u64::MAX).prop_map(|bits| Op::Alloc {
            size: 1 + (bits % 2048) as usize,
            align_log: ((bits >> 24) % 10) as u32, // 1 B .. 512 B
            zeroed: (bits >> 40) & 1 == 1,
        }),
        1 => (0u64..u64::MAX).prop_map(|bits| Op::Alloc {
            size: 2049 + (bits % 6000) as usize,
            align_log: ((bits >> 24) % 13) as u32, // 1 B .. 4 KiB
            zeroed: (bits >> 40) & 1 == 1,
        }),
        2 => (0usize..64).prop_map(Op::Free),
        3 => (0u64..u64::MAX).prop_map(|bits| Op::Realloc {
            idx: (bits % 64) as usize,
            size: 1 + ((bits >> 16) % 4000) as usize,
        }),
    ]
}

/// A live facade block plus its `System`-side mirror of expected contents.
struct LiveBlock {
    ptr: NonNull<u8>,
    layout: Layout,
    mirror: Vec<u8>,
}

impl LiveBlock {
    fn contents_match(&self) -> bool {
        let actual = unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.layout.size()) };
        actual == self.mirror.as_slice()
    }
}

/// Deterministic fill pattern for the `n`-th allocation event.
fn fill(block: &mut LiveBlock, seed: usize) {
    for (i, byte) in block.mirror.iter_mut().enumerate() {
        *byte = (seed ^ i).wrapping_mul(0x9E) as u8;
    }
    unsafe {
        std::ptr::copy_nonoverlapping(
            block.mirror.as_ptr(),
            block.ptr.as_ptr(),
            block.mirror.len(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The slab-fronted facade agrees with the System-mirror oracle over
    /// arbitrary allocate/grow/shrink/deallocate sequences: contents are
    /// preserved across grow/shrink, every pointer honours its layout's
    /// alignment (slab class offsets are not power-of-two aligned, so this
    /// exercises the facade's alignment bump), no two live blocks overlap,
    /// and `allocate_zeroed` scrubs recycled class objects.
    #[test]
    fn slab_stack_matches_system_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let alloc = slab_stack();
        let mut live: Vec<LiveBlock> = Vec::new();
        let mut event = 0usize;
        for op in ops {
            event += 1;
            match op {
                Op::Alloc { size, align_log, zeroed } => {
                    let layout = Layout::from_size_align(size, 1 << align_log).unwrap();
                    let block = if zeroed {
                        alloc.allocate_zeroed(layout)
                    } else {
                        alloc.allocate(layout)
                    };
                    let Ok(block) = block else { continue }; // transient OOM
                    let ptr = block.cast::<u8>();
                    prop_assert!(block.len() >= size, "slice covers the request");
                    prop_assert_eq!(
                        ptr.as_ptr() as usize % layout.align(), 0,
                        "alignment honoured"
                    );
                    if zeroed {
                        let bytes = unsafe {
                            std::slice::from_raw_parts(ptr.as_ptr(), block.len())
                        };
                        prop_assert!(
                            bytes.iter().all(|&b| b == 0),
                            "allocate_zeroed scrubbed a recycled chunk"
                        );
                    }
                    let mut fresh = LiveBlock { ptr, layout, mirror: vec![0u8; size] };
                    fill(&mut fresh, event);
                    live.push(fresh);
                }
                Op::Free(k) => {
                    if live.is_empty() { continue; }
                    let block = live.swap_remove(k % live.len());
                    prop_assert!(block.contents_match(), "contents intact at release");
                    unsafe { alloc.deallocate(block.ptr, block.layout) };
                }
                Op::Realloc { idx, size } => {
                    if live.is_empty() { continue; }
                    let idx = idx % live.len();
                    let block = &mut live[idx];
                    let new_layout =
                        Layout::from_size_align(size, block.layout.align()).unwrap();
                    let result = unsafe {
                        if size >= block.layout.size() {
                            alloc.grow(block.ptr, block.layout, new_layout)
                        } else {
                            alloc.shrink(block.ptr, block.layout, new_layout)
                        }
                    };
                    let Ok(moved) = result else { continue }; // transient OOM
                    let kept = block.layout.size().min(size);
                    block.ptr = moved.cast::<u8>();
                    block.layout = new_layout;
                    prop_assert_eq!(
                        block.ptr.as_ptr() as usize % new_layout.align(), 0,
                        "alignment preserved across realloc"
                    );
                    let survived = unsafe {
                        std::slice::from_raw_parts(block.ptr.as_ptr(), kept)
                    };
                    prop_assert_eq!(
                        survived, &block.mirror[..kept],
                        "contents preserved across grow/shrink"
                    );
                    block.mirror.resize(size, 0);
                    fill(block, event);
                }
            }
            // Full cross-check: any overlap between live blocks — including
            // two class objects sharing a slab slot — corrupts a pattern.
            for block in &live {
                prop_assert!(block.contents_match(), "no live block was clobbered");
            }
        }
        for block in live.drain(..) {
            prop_assert!(block.contents_match());
            unsafe { alloc.deallocate(block.ptr, block.layout) };
        }
        prop_assert_eq!(alloc.allocated_bytes(), 0, "everything returned");
    }
}

/// Blocks allocated on one thread and released on others must route back to
/// the owning slab page (a class offset freed on a foreign thread first
/// parks in that thread's magazines, then flows through the slab's
/// page-state lookup on flush) — the Larson-style hand-off pattern.
#[test]
fn cross_thread_frees_route_to_the_owning_page() {
    let stack = Arc::new(slab_stack());
    let layout = Layout::from_size_align(40, 8).unwrap();
    let producer = Arc::clone(&stack);
    let blocks: Vec<usize> = std::thread::spawn(move || {
        (0..600)
            .map(|_| producer.allocate(layout).unwrap().cast::<u8>().as_ptr() as usize)
            .collect()
    })
    .join()
    .unwrap();
    // Split the release across two consumer threads, neither the producer.
    let mid = blocks.len() / 2;
    let halves = [blocks[..mid].to_vec(), blocks[mid..].to_vec()];
    let handles: Vec<_> = halves
        .into_iter()
        .map(|half| {
            let consumer = Arc::clone(&stack);
            std::thread::spawn(move || {
                for addr in half {
                    let ptr = NonNull::new(addr as *mut u8).unwrap();
                    unsafe { consumer.deallocate(ptr, layout) };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Freed objects park in the consumers' magazines first; the drain
    // pushes them through the slab's page-state lookup.
    assert_eq!(stack.allocated_bytes(), 0, "no user-live memory");
    stack.backend().drain_cache();
    let frag = stack.backend().backend().frag_snapshot();
    assert_eq!(frag.live_objects(), 0, "every cross-thread free landed");
    assert_stack_quiescent(&stack);
}

/// Transient and OOM faults firing during slab page grants degrade per the
/// PR 7 semantics — transients surface as `AllocError::Transient`, hard OOM
/// falls back to a buddy passthrough grant — and no partially-granted page
/// is ever orphaned: after the storm, a drain returns the tree to a fully
/// coalesced empty state.
#[test]
fn fault_storm_during_page_grants_orphans_nothing() {
    let injected = FaultInjecting::new(NbbsFourLevel::new(cfg()), FaultPlan::storm(0x51AB_5EED));
    let slab = SlabBackend::with_config(injected, slab_config());
    let mut rng = SplitMix64::new(0x51AB_5EED);
    let mut live: Vec<usize> = Vec::new();
    let mut transients = 0u64;
    for _ in 0..30_000 {
        if live.is_empty() || rng.next_u64() & 1 == 0 {
            // Sizes across the class ladder plus the passthrough tail.
            let size = 8usize << rng.next_below(10); // 8 B .. 4 KiB
            match slab.try_alloc(size) {
                Ok(off) => live.push(off),
                Err(AllocError::Transient { .. }) => transients += 1,
                Err(_) => {}
            }
        } else {
            let off = live.swap_remove(rng.next_below(live.len()));
            slab.dealloc(off);
        }
    }
    assert!(transients > 0, "the storm should have injected transients");
    let stats = slab.inner().fault_stats();
    assert!(
        stats.injected_failures > 0 && stats.injected_oom > 0,
        "both fault kinds must have reached the grant path: {stats:?}"
    );

    slab.inner().disarm();
    for off in live {
        slab.dealloc(off);
    }
    assert_eq!(slab.allocated_bytes(), 0);
    slab.drain_cache();
    let tree = slab.inner().inner();
    assert_eq!(tree.allocated_bytes(), 0, "no page was orphaned");
    nbbs::verify::audit_empty(tree).assert_clean();
}

/// Injected panics unwinding through the slab's grant path must not orphan
/// the page either: the grant panics *before* the buddy op runs (the
/// `nbbs-chaos` contract), so the slab's bookkeeping never observes a
/// half-granted page.
#[test]
fn panic_storm_through_the_slab_orphans_nothing() {
    let injected = FaultInjecting::new(
        NbbsFourLevel::new(cfg()),
        FaultPlan::panic_storm(0x51AB_0BAD),
    );
    let slab = SlabBackend::with_config(injected, slab_config());
    let mut rng = SplitMix64::new(0x51AB_0BAD);
    let mut live: Vec<usize> = Vec::new();
    let mut interrupted: Vec<usize> = Vec::new();
    let mut panics = 0u32;
    for _ in 0..20_000 {
        if live.is_empty() || rng.next_u64() & 1 == 0 {
            let size = 8usize << rng.next_below(10);
            match catch_unwind(AssertUnwindSafe(|| slab.alloc(size))) {
                Ok(Some(off)) => live.push(off),
                Ok(None) => {}
                Err(_) => panics += 1,
            }
        } else {
            let off = live.swap_remove(rng.next_below(live.len()));
            if catch_unwind(AssertUnwindSafe(|| slab.dealloc(off))).is_err() {
                panics += 1;
                interrupted.push(off);
            }
        }
    }
    assert!(panics > 0, "the storm should have injected panics");

    slab.inner().disarm();
    // A panicking dealloc may or may not have released its offset: a class
    // object is freed in the bitmap before any backend call runs (the panic
    // can only interrupt the page *retire*, which the orphan list covers),
    // while a passthrough free panics before the buddy saw it at all.
    // Retry via `try_dealloc`, which rejects the already-freed case as an
    // error instead of double-freeing.
    for off in live.into_iter().chain(interrupted) {
        let _ = slab.try_dealloc(off);
    }
    slab.drain_cache();
    let tree = slab.inner().inner();
    assert_eq!(tree.allocated_bytes(), 0, "no page was orphaned by a panic");
    nbbs::verify::audit_empty(tree).assert_clean();
}

/// The slab composes under `Recorded`: latency histograms capture the slab
/// ops, and the frag/alignment hooks forward through the wrapper.
#[test]
fn slab_composes_under_recorded() {
    let recorder = Arc::new(Recorder::new());
    let recorded = Recorded::new(slab(), Arc::clone(&recorder));
    assert_eq!(recorded.granted_size_for(40), Some(40));
    assert_eq!(recorded.grant_alignment_for(40), Some(8));

    let offs: Vec<usize> = (0..128).filter_map(|_| recorded.alloc(40)).collect();
    assert_eq!(offs.len(), 128);
    for &off in &offs {
        recorded.dealloc(off);
    }
    let frag = recorded
        .frag_stats()
        .expect("frag forwards through Recorded");
    assert_eq!(frag.bytes_requested(), 128 * 40);
    assert_eq!(frag.bytes_committed(), 128 * 40);
    assert_eq!(frag.live_objects(), 0);
    assert!(
        recorder.snapshot(OpKind::Alloc).total() >= 128,
        "histograms observed the slab allocs"
    );
    assert!(recorder.snapshot(OpKind::Free).total() >= 128);
    recorded.drain_cache();
    assert_eq!(recorded.allocated_bytes(), 0);
}

/// The slab composes under an inert `FaultInjecting`: pure forwarding of
/// the grant geometry and the frag payload.
#[test]
fn slab_composes_under_inert_fault_injection() {
    let wrapped = FaultInjecting::inert(slab());
    assert_eq!(wrapped.granted_size_for(40), Some(40));
    assert_eq!(wrapped.grant_alignment_for(48), Some(16));
    let off = wrapped.alloc(40).expect("inert wrapper forwards");
    wrapped.dealloc(off);
    let frag = wrapped
        .frag_stats()
        .expect("frag forwards through FaultInjecting");
    assert_eq!(frag.bytes_requested(), 40);
    assert_eq!(frag.live_objects(), 0);
    wrapped.drain_cache();
    assert_eq!(wrapped.allocated_bytes(), 0);
}

/// Per-node slabs compose under `NodeSet`: allocations land on the home
/// node's slab, frees route back to the owning node's page via the packed
/// offset, and `frag_stats` merges the per-node snapshots.
#[test]
fn slab_composes_under_node_set() {
    const NODES: usize = 3; // deliberately not a power of two
    let per_node = BuddyConfig::new(1 << 18, MIN, 1 << 13).unwrap();
    let set = NodeSet::with_topology(
        (0..NODES)
            .map(|_| SlabBackend::with_config(NbbsFourLevel::new(per_node), slab_config()))
            .collect(),
        Topology::synthetic(NODES),
        NodePolicy::HomeFirst,
    );
    // The class grant and its sub-node alignment survive the widening.
    assert_eq!(set.granted_size_for(40), Some(40));
    assert_eq!(set.grant_alignment_for(40), Some(8));

    // Spread allocations explicitly across all nodes, free every one from
    // this (foreign-to-most-nodes) context.
    let mut offs = Vec::new();
    for node in 0..NODES {
        for _ in 0..64 {
            offs.push(set.alloc_on(node, 40).expect("node-local slab grant"));
        }
    }
    let frag = set.frag_stats().expect("frag merges across nodes");
    assert_eq!(frag.bytes_requested(), (NODES * 64 * 40) as u64);
    assert_eq!(frag.live_objects(), (NODES * 64) as u64);
    for off in offs {
        set.dealloc(off);
    }
    let frag = set.frag_stats().unwrap();
    assert_eq!(frag.live_objects(), 0, "cross-node frees found their pages");
    set.drain_cache();
    assert_eq!(set.allocated_bytes(), 0);
    for i in 0..NODES {
        nbbs::verify::audit_empty(set.node(i).inner()).assert_clean();
    }
}
