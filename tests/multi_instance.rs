//! Fallback-routing coverage for `MultiInstance` (the NUMA-style router):
//! exhausting a home instance must spill allocations to the other instances
//! in order, and global-offset releases must return each chunk to the
//! instance that owns it — including when every instance sits behind a
//! magazine cache.
//!
//! `MultiInstance` is deprecated in favour of `nbbs_numa::NodeSet` (see
//! `tests/numa_nodeset.rs` for the successor's coverage); this suite stays
//! green to pin the compatibility shim's behaviour until it is removed.
#![allow(deprecated)]

use std::sync::Arc;

use nbbs::{BuddyBackend, BuddyConfig, MultiInstance, NbbsFourLevel, NbbsOneLevel};
use nbbs_cache::MagazineCache;
use nbbs_workloads::rng::SplitMix64;

fn instances(n: usize, total: usize) -> MultiInstance<NbbsOneLevel> {
    MultiInstance::new(
        (0..n)
            .map(|_| NbbsOneLevel::new(BuddyConfig::new(total, 64, total).unwrap()))
            .collect(),
    )
}

#[test]
fn exhausted_home_spills_to_instances_in_fallback_order() {
    let m = instances(3, 4096);
    // Pin the calling thread's home instance, then exhaust it directly.
    let home = m.home_instance();
    let mut held = Vec::new();
    while let Some(off) = m.alloc_on(home, 4096) {
        assert_eq!(m.owner_of(off), home);
        held.push(off);
    }
    // Routed allocations now spill in nearest-first ring order: distance 1
    // clockwise, then distance 1 anticlockwise (= home+2 for 3 instances).
    let first_spill = m.alloc(4096).expect("fallback instance has room");
    assert_eq!(
        m.owner_of(first_spill),
        (home + 1) % 3,
        "nearest fallback first"
    );
    let second_spill = m.alloc(4096).expect("second fallback instance has room");
    assert_eq!(m.owner_of(second_spill), (home + 2) % 3);
    // Everything is now full.
    assert!(m.alloc(64).is_none());
    held.push(first_spill);
    held.push(second_spill);
    for off in held {
        m.dealloc(off);
    }
    assert_eq!(m.allocated_bytes(), 0);
}

#[test]
fn fallback_respects_ring_distance_with_an_even_instance_count() {
    // Four instances is where the old `0..n` scan and nearest-first
    // diverge: for a thread homed on h, the *wrapped* neighbour h-1 must be
    // probed before the distance-2 instance h+2.
    let m = instances(4, 4096);
    let home = m.home_instance();
    let mut held = Vec::new();
    while let Some(off) = m.alloc_on(home, 4096) {
        held.push(off);
    }
    held.push(m.alloc_on((home + 1) % 4, 4096).expect("room"));
    // Home and home+1 are full: the next routed allocation must take the
    // wrapped distance-1 neighbour, not march on to home+2.
    let spill = m.alloc(4096).expect("two instances still have room");
    assert_eq!(m.owner_of(spill), (home + 3) % 4, "wrapped neighbour first");
    held.push(spill);
    for off in held {
        m.dealloc(off);
    }
    assert_eq!(m.allocated_bytes(), 0);
}

#[test]
fn global_offset_dealloc_returns_chunks_to_their_owner() {
    let m = instances(4, 4096);
    // Allocate one chunk on every instance explicitly.
    let offs: Vec<usize> = (0..4)
        .map(|i| m.alloc_on(i, 1024).expect("fresh instance has room"))
        .collect();
    for (i, &off) in offs.iter().enumerate() {
        assert_eq!(m.owner_of(off), i);
        assert_eq!(m.split(off), (i, off - i * 4096));
    }
    let per_before = m.allocated_bytes_per_instance();
    assert_eq!(per_before, vec![1024; 4]);
    // Free them from a different order than they were allocated; each must
    // land back in its owner, not the caller's home instance.
    for &off in offs.iter().rev() {
        m.dealloc(off);
    }
    assert_eq!(m.allocated_bytes_per_instance(), vec![0; 4]);
    // The capacity is back where it was freed: every instance can serve its
    // maximal chunk again.
    let again: Vec<usize> = (0..4)
        .map(|i| {
            m.alloc_on(i, 4096)
                .expect("owner did not get its chunk back")
        })
        .collect();
    for off in again {
        m.dealloc(off);
    }
}

#[test]
fn spill_and_owner_return_survive_concurrent_churn() {
    let m = Arc::new(MultiInstance::new(
        (0..3)
            .map(|_| NbbsFourLevel::new(BuddyConfig::new(1 << 14, 64, 1 << 12).unwrap()))
            .collect::<Vec<_>>(),
    ));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0x11AC ^ t as u64);
                let mut live = Vec::new();
                for _ in 0..3_000 {
                    if live.is_empty() || rng.next_u64() & 1 == 0 {
                        let size = 64usize << rng.next_below(5);
                        if let Some(off) = m.alloc(size) {
                            assert!(m.owner_of(off) < 3);
                            live.push(off);
                        }
                    } else {
                        m.dealloc(live.swap_remove(rng.next_below(live.len())));
                    }
                }
                for off in live {
                    m.dealloc(off);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(m.allocated_bytes(), 0);
    assert_eq!(m.allocated_bytes_per_instance(), vec![0; 3]);
    // Per-instance metadata is pristine: each instance hands out its whole
    // region as one chunk.
    for i in 0..3 {
        let off = m.alloc_on(i, 1 << 12).expect("instance lost capacity");
        m.dealloc(off);
    }
}

#[test]
fn cached_instances_route_and_drain_like_bare_ones() {
    let m = MultiInstance::new(
        (0..2)
            .map(|_| {
                MagazineCache::new(NbbsOneLevel::new(BuddyConfig::new(4096, 64, 4096).unwrap()))
            })
            .collect::<Vec<_>>(),
    );
    let home = m.home_instance() % 2;
    // Exhaust the home instance *through its cache*.
    let mut held = Vec::new();
    while let Some(off) = m.alloc_on(home, 4096) {
        held.push(off);
    }
    // Spill still works with caches interposed.
    let spilled = m.alloc(4096).expect("cached fallback instance has room");
    assert_eq!(m.owner_of(spilled), (home + 1) % 2);
    m.dealloc(spilled);
    for off in held {
        m.dealloc(off);
    }
    assert_eq!(
        m.allocated_bytes(),
        0,
        "cache-aware accounting through the router"
    );
    // Draining each instance's cache returns the chunks to the right backend.
    for i in 0..2 {
        m.instance(i).drain_cache();
        assert_eq!(m.instance(i).backend().allocated_bytes(), 0);
    }
}

#[test]
fn router_merges_cache_stats_and_drains_every_instance() {
    let bare = instances(2, 4096);
    assert!(
        bare.cache_stats().is_none(),
        "plain backends report no cache layer"
    );
    bare.drain_cache(); // a no-op, but must not panic

    let m = MultiInstance::new(
        (0..2)
            .map(|_| {
                MagazineCache::new(NbbsOneLevel::new(BuddyConfig::new(4096, 64, 4096).unwrap()))
            })
            .collect::<Vec<_>>(),
    );
    // Traffic on both instances, explicitly, so each cache sees requests.
    for i in 0..2 {
        let off = m.alloc_on(i, 64).expect("fresh instance has room");
        m.dealloc(off);
    }
    let merged = m.cache_stats().expect("cached instances report a layer");
    assert!(merged.alloc_requests() >= 2, "both caches saw traffic");
    assert_eq!(
        merged.depot_shards,
        (0..2)
            .map(|i| m.instance(i).depot_shard_count() as u64)
            .sum::<u64>(),
        "shards sum across the per-node caches"
    );
    // The merged drain empties every instance's cache down to the trees.
    m.drain_cache();
    for i in 0..2 {
        assert_eq!(m.instance(i).backend().allocated_bytes(), 0);
        assert_eq!(m.instance(i).cached_bytes(), 0);
    }
    assert!(m.cache_stats().unwrap().drained > 0);
}

/// Symmetry/completeness property of the shared fallback order, checked
/// exhaustively for every ring size 1..=16 and every start node: the
/// sequence is a permutation (every node exactly once) and the ring
/// distances to the start are non-decreasing — no farther node is ever
/// probed before a closer one.
#[test]
fn nearest_first_order_is_complete_and_distance_monotone_for_all_rings() {
    for n in 1usize..=16 {
        for start in 0..n {
            let order: Vec<usize> = nbbs::nearest_first_order(start, n).collect();

            // Completeness: a permutation of 0..n starting at `start`.
            assert_eq!(order.len(), n, "ring {n} start {start}: wrong length");
            let mut seen = vec![false; n];
            for &node in &order {
                assert!(node < n, "ring {n} start {start}: node {node} out of range");
                assert!(
                    !seen[node],
                    "ring {n} start {start}: node {node} appears twice"
                );
                seen[node] = true;
            }
            assert_eq!(order[0], start, "the start node is probed first");

            // Distance monotonicity on the ring (symmetric distance:
            // min(clockwise, counter-clockwise)).
            let ring_distance = |node: usize| {
                let d = (node + n - start) % n;
                d.min(n - d)
            };
            let distances: Vec<usize> = order.iter().map(|&node| ring_distance(node)).collect();
            assert!(
                distances.windows(2).all(|w| w[0] <= w[1]),
                "ring {n} start {start}: distances not non-decreasing: {distances:?}"
            );
        }
    }
}

/// The order is also start-shift equivariant: rotating the start rotates
/// the whole sequence — no node is privileged beyond its distance.
#[test]
fn nearest_first_order_is_shift_equivariant() {
    for n in 1usize..=16 {
        let base: Vec<usize> = nbbs::nearest_first_order(0, n).collect();
        for start in 0..n {
            let shifted: Vec<usize> = nbbs::nearest_first_order(start, n).collect();
            let expected: Vec<usize> = base.iter().map(|&v| (v + start) % n).collect();
            assert_eq!(
                shifted, expected,
                "ring {n}: order at start {start} is not the rotated base order"
            );
        }
    }
}
