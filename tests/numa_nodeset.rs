//! Differential and cross-node routing tests of the `nbbs-numa` stack:
//! `NbbsAllocator<NodeSet<NbbsFourLevel>>` against the System-mirror oracle
//! (the `tests/facade_alloc.rs` harness re-targeted at the multi-node
//! backend), plus cross-node free routing with and without the magazine
//! cache interposed.

use std::alloc::Layout;
use std::collections::BTreeMap;
use std::ptr::NonNull;
use std::sync::Arc;

use proptest::prelude::*;

use nbbs::{BuddyBackend, BuddyConfig, NbbsFourLevel};
use nbbs_alloc::NbbsAllocator;
use nbbs_cache::{verify_cached_empty, MagazineCache};
use nbbs_numa::{NodePolicy, NodeSet, Topology};

const PER_NODE: usize = 1 << 18;
const MIN: usize = 16;
const MAX: usize = 1 << 13;
const NODES: usize = 3; // deliberately not a power of two: widening rounds to 4

fn node_set(nodes: usize) -> NodeSet<NbbsFourLevel> {
    let config = BuddyConfig::new(PER_NODE, MIN, MAX).unwrap();
    NodeSet::with_topology(
        (0..nodes).map(|_| NbbsFourLevel::new(config)).collect(),
        Topology::synthetic(nodes),
        NodePolicy::HomeFirst,
    )
}

fn facade() -> NbbsAllocator<MagazineCache<NodeSet<NbbsFourLevel>>> {
    NbbsAllocator::new(MagazineCache::new(node_set(NODES)))
}

/// One step of a generated layout workload (mirrors `facade_alloc.rs`).
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        size: usize,
        align_log: u32,
        zeroed: bool,
    },
    Free(usize),
    Realloc {
        idx: usize,
        size: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..u64::MAX).prop_map(|bits| Op::Alloc {
            size: 1 + (bits % 5000) as usize,
            align_log: ((bits >> 24) % 13) as u32, // 1 B .. 4 KiB
            zeroed: (bits >> 40) & 1 == 1,
        }),
        2 => (0usize..64).prop_map(Op::Free),
        3 => (0u64..u64::MAX).prop_map(|bits| Op::Realloc {
            idx: (bits % 64) as usize,
            size: 1 + ((bits >> 16) % 5000) as usize,
        }),
    ]
}

/// A live facade block plus its `System`-side mirror of expected contents.
struct LiveBlock {
    ptr: NonNull<u8>,
    layout: Layout,
    mirror: Vec<u8>,
}

impl LiveBlock {
    fn contents_match(&self) -> bool {
        let actual = unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.layout.size()) };
        actual == self.mirror.as_slice()
    }
}

fn fill(block: &mut LiveBlock, seed: usize) {
    for (i, byte) in block.mirror.iter_mut().enumerate() {
        *byte = (seed ^ i).wrapping_mul(0x9E) as u8;
    }
    unsafe {
        std::ptr::copy_nonoverlapping(
            block.mirror.as_ptr(),
            block.ptr.as_ptr(),
            block.mirror.len(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The multi-node facade agrees with the System-mirror oracle over
    /// arbitrary allocate/grow/shrink/deallocate sequences: contents
    /// preserved, alignment honoured, no overlap across node boundaries.
    #[test]
    fn numa_facade_matches_system_oracle(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let alloc = facade();
        let mut live: Vec<LiveBlock> = Vec::new();
        let mut event = 0usize;
        for op in ops {
            event += 1;
            match op {
                Op::Alloc { size, align_log, zeroed } => {
                    let layout = Layout::from_size_align(size, 1 << align_log).unwrap();
                    let block = if zeroed {
                        alloc.allocate_zeroed(layout)
                    } else {
                        alloc.allocate(layout)
                    };
                    let Ok(block) = block else { continue }; // transient OOM
                    let ptr = block.cast::<u8>();
                    prop_assert!(block.len() >= size);
                    prop_assert_eq!(ptr.as_ptr() as usize % layout.align(), 0);
                    if zeroed {
                        let bytes = unsafe {
                            std::slice::from_raw_parts(ptr.as_ptr(), block.len())
                        };
                        prop_assert!(bytes.iter().all(|&b| b == 0));
                    }
                    let mut fresh = LiveBlock { ptr, layout, mirror: vec![0u8; size] };
                    fill(&mut fresh, event);
                    live.push(fresh);
                }
                Op::Free(k) => {
                    if live.is_empty() { continue; }
                    let block = live.swap_remove(k % live.len());
                    prop_assert!(block.contents_match(), "contents intact at release");
                    unsafe { alloc.deallocate(block.ptr, block.layout) };
                }
                Op::Realloc { idx, size } => {
                    if live.is_empty() { continue; }
                    let idx = idx % live.len();
                    let block = &mut live[idx];
                    let new_layout =
                        Layout::from_size_align(size, block.layout.align()).unwrap();
                    let result = unsafe {
                        if size >= block.layout.size() {
                            alloc.grow(block.ptr, block.layout, new_layout)
                        } else {
                            alloc.shrink(block.ptr, block.layout, new_layout)
                        }
                    };
                    let Ok(moved) = result else { continue }; // transient OOM
                    let kept = block.layout.size().min(size);
                    block.ptr = moved.cast::<u8>();
                    block.layout = new_layout;
                    prop_assert_eq!(block.ptr.as_ptr() as usize % new_layout.align(), 0);
                    let survived = unsafe {
                        std::slice::from_raw_parts(block.ptr.as_ptr(), kept)
                    };
                    prop_assert_eq!(survived, &block.mirror[..kept]);
                    block.mirror.resize(size, 0);
                    fill(block, event);
                }
            }
            for block in &live {
                prop_assert!(block.contents_match(), "no live block was clobbered");
            }
        }
        for block in live.drain(..) {
            prop_assert!(block.contents_match());
            unsafe { alloc.deallocate(block.ptr, block.layout) };
        }
        prop_assert_eq!(alloc.allocated_bytes(), 0, "everything returned");
        // Drain the cache and check every node's tree came back clean.
        alloc.backend().drain_all();
        let set = alloc.backend().backend();
        prop_assert_eq!(set.allocated_bytes(), 0);
        for i in 0..set.node_count() {
            nbbs::verify::audit_empty(set.node(i)).assert_clean();
        }
    }
}

/// Bare cross-node free routing: blocks allocated on an explicit node are
/// freed from a thread homed elsewhere, and land back on the owner.
#[test]
fn cross_node_frees_route_to_the_owning_node() {
    let set = Arc::new(node_set(4));
    // Allocate a batch on every node explicitly from this thread.
    let mut offs = Vec::new();
    for node in 0..4 {
        for _ in 0..16 {
            let off = set.alloc_on(node, 1024).expect("fresh node has room");
            assert_eq!(set.owner_of(off), node);
            offs.push(off);
        }
    }
    let per_before = set.allocated_bytes_per_node();
    assert_eq!(per_before, vec![16 * 1024; 4]);
    // Free everything from a different (spawned) thread, whichever node it
    // is homed on: pure offset arithmetic must return each chunk home.
    let freer_set = Arc::clone(&set);
    std::thread::spawn(move || {
        for off in offs {
            freer_set.dealloc(off);
        }
    })
    .join()
    .unwrap();
    assert_eq!(set.allocated_bytes_per_node(), vec![0; 4]);
    // Every node can serve its maximal chunk again: nothing leaked across.
    for node in 0..4 {
        let off = set
            .alloc_on(node, PER_NODE.min(MAX))
            .expect("capacity back");
        set.dealloc(off);
    }
    for i in 0..4 {
        nbbs::verify::audit_empty(set.node(i)).assert_clean();
    }
}

/// Audits every node of a cache-over-`NodeSet` stack: the caller-live map
/// (global offsets) is merged with the cache's parked chunks — parked is
/// live to the trees — and projected onto each node's local offsets.  The
/// multi-node equivalent of `nbbs_cache::verify_cached`, which needs a
/// single inspectable tree and so cannot see through the router.
fn audit_nodes_cached(
    cache: &MagazineCache<NodeSet<NbbsFourLevel>>,
    live: &BTreeMap<usize, usize>,
) {
    let mut merged = live.clone();
    for (off, size) in cache.cached_chunks() {
        assert!(
            merged.insert(off, size).is_none(),
            "offset {off} reached two owners (parked twice, or parked while caller-live)"
        );
    }
    let set = cache.backend();
    for node in 0..set.node_count() {
        let node_live: BTreeMap<usize, usize> = merged
            .iter()
            .filter(|&(&off, _)| set.owner_of(off) == node)
            .map(|(&off, &size)| (set.split(off).1, size))
            .collect();
        nbbs::verify::audit(set.node(node), &node_live, true).assert_clean();
    }
}

/// Cross-node traffic *through the cache*: a thread homed on one node
/// allocates, a thread homed elsewhere frees; the remote chunks park in the
/// freeing thread's magazines, the cached per-node audit stays clean
/// throughout, and a full drain returns every chunk to its owning tree.
#[test]
fn cached_cross_node_traffic_drains_clean() {
    let cache = Arc::new(MagazineCache::new(node_set(2)));

    // Producer thread: allocate a pile of chunks (its home node serves
    // them, possibly with fallback).
    let producer = Arc::clone(&cache);
    let offs: Vec<usize> = std::thread::spawn(move || {
        (0..200)
            .map(|i| {
                let size = MIN << (i % 4);
                producer.alloc(size).expect("plenty of room")
            })
            .collect()
    })
    .join()
    .unwrap();

    // Mid-flight: caller-live blocks plus refill-parked chunks must cover
    // every occupied tree node, on both trees.
    let set_live: BTreeMap<usize, usize> = offs
        .iter()
        .enumerate()
        .map(|(i, &off)| (off, MIN << (i % 4)))
        .collect();
    audit_nodes_cached(&cache, &set_live);

    // Consumer thread: free everything; remote chunks flow through *its*
    // magazines.
    let consumer = Arc::clone(&cache);
    std::thread::spawn(move || {
        for off in offs {
            consumer.dealloc(off);
        }
    })
    .join()
    .unwrap();
    assert_eq!(cache.allocated_bytes(), 0, "nothing user-live");

    // With parked chunks still in magazines, the cached audit is the one
    // that must pass (a bare audit would flag them as stray occupancy).
    audit_nodes_cached(&cache, &BTreeMap::new());

    // Draining pushes every parked chunk back through the arithmetic free
    // routing to its owner tree.
    cache.drain_all();
    audit_nodes_cached(&cache, &BTreeMap::new());
    let set = cache.backend();
    assert_eq!(set.allocated_bytes_per_node(), vec![0; 2]);
    for i in 0..2 {
        nbbs::verify::audit_empty(set.node(i)).assert_clean();
    }
}

/// Per-node caches under the router (the other nesting direction):
/// `NodeSet<MagazineCache<NbbsFourLevel>>` routes, caches per node, and
/// each node's `verify_cached_empty` stays clean after cross-node churn.
#[test]
fn per_node_caches_verify_clean_after_cross_node_churn() {
    let config = BuddyConfig::new(PER_NODE, MIN, MAX).unwrap();
    let set = Arc::new(NodeSet::with_topology(
        (0..2)
            .map(|_| MagazineCache::new(NbbsFourLevel::new(config)))
            .collect::<Vec<_>>(),
        Topology::synthetic(2),
        NodePolicy::HomeFirst,
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let set = Arc::clone(&set);
            std::thread::spawn(move || {
                let mut live = Vec::new();
                for i in 0..2_000usize {
                    let size = MIN << ((i + t) % 4);
                    if let Some(off) = set.alloc(size) {
                        live.push(off);
                    }
                    if live.len() > 24 {
                        // Free in FIFO order: chunks frequently return from
                        // a different thread phase than allocated them.
                        set.dealloc(live.remove(0));
                    }
                }
                for off in live {
                    set.dealloc(off);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(set.allocated_bytes(), 0);
    // The merged cache telemetry is visible through the router.
    assert!(set.cache_stats().expect("per-node caches").alloc_requests() > 0);
    for node in 0..2 {
        verify_cached_empty(set.node(node)).assert_clean();
    }
    set.drain_cache();
    for node in 0..2 {
        assert_eq!(set.node(node).backend().allocated_bytes(), 0);
        nbbs::verify::audit_empty(set.node(node).backend()).assert_clean();
    }
}

/// The facade's oversize fail-over stays per-node: a request above the
/// per-node ceiling is rejected by the widened geometry (`TooLarge`), never
/// silently split across nodes.
#[test]
fn oversize_requests_fail_over_per_node() {
    let alloc = facade();
    let too_big = Layout::from_size_align(MAX + 1, 8).unwrap();
    assert!(alloc.allocate(too_big).is_err(), "above per-node max_size");
    assert_eq!(alloc.granted_size(too_big), None);
    // At exactly the per-node ceiling the buddy serves it.
    let ceiling = Layout::from_size_align(MAX, 8).unwrap();
    let block = alloc.allocate(ceiling).expect("per-node max is servable");
    assert_eq!(block.len(), MAX);
    unsafe { alloc.deallocate(block.cast(), ceiling) };
    assert_eq!(alloc.allocated_bytes(), 0);
}
