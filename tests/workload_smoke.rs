//! End-to-end smoke tests of the benchmark harness: every figure's sweep can
//! be executed (at a tiny scale) and produces structurally sound
//! measurements, reports and gain summaries.

use nbbs_workloads::factory::AllocatorKind;
use nbbs_workloads::harness::{FigureSpec, Harness, Metric, SweepConfig, Workload};
use nbbs_workloads::report;

fn tiny(sweep: SweepConfig) -> SweepConfig {
    sweep.with_threads(vec![2]).with_sizes(vec![64])
}

#[test]
fn every_user_space_figure_sweep_runs_end_to_end() {
    let harness = Harness::new(false);
    for (figure, workload) in [
        (FigureSpec::Fig8, Workload::LinuxScalability),
        (FigureSpec::Fig9, Workload::ThreadTest),
        (FigureSpec::Fig11, Workload::ConstantOccupancy),
    ] {
        let sweep = tiny(SweepConfig::user_space(workload, 0.0002));
        let measurements = harness.run_sweep(&sweep);
        assert_eq!(measurements.len(), 5, "{figure:?}");
        for m in &measurements {
            assert_eq!(m.result.threads, 2);
            assert!(m.result.operations > 0);
            assert!(m.result.seconds > 0.0);
            assert_eq!(m.result.failed_allocs, 0, "{figure:?} {}", m.allocator);
        }
        // All five paper allocators are present exactly once.
        let mut names: Vec<&str> = measurements.iter().map(|m| m.allocator.as_str()).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            vec!["1lvl-nb", "1lvl-sl", "4lvl-nb", "4lvl-sl", "buddy-sl"]
        );
    }
}

#[test]
fn larson_figure_sweep_reports_throughput() {
    let harness = Harness::new(false);
    let sweep = tiny(SweepConfig::user_space(Workload::Larson, 0.01));
    let measurements = harness.run_sweep(&sweep);
    assert_eq!(measurements.len(), 5);
    for m in &measurements {
        assert!(
            m.result.kops_per_sec() > 0.0,
            "{} reported zero throughput",
            m.allocator
        );
    }
}

#[test]
fn kernel_comparison_sweep_runs_and_reports_cycles() {
    let harness = Harness::new(false);
    let sweep =
        SweepConfig::kernel_comparison(Workload::LinuxScalability, 0.0002).with_threads(vec![2]);
    let measurements = harness.run_sweep(&sweep);
    assert_eq!(measurements.len(), 4);
    for m in &measurements {
        assert!(m.result.cycles > 0, "{}", m.allocator);
        assert_eq!(m.size, 128 << 10);
    }
    let names: std::collections::HashSet<&str> =
        measurements.iter().map(|m| m.allocator.as_str()).collect();
    assert!(names.contains("linux-buddy"));
}

#[test]
fn reports_are_generated_from_real_measurements() {
    let harness = Harness::new(false);
    let sweep = SweepConfig::user_space(Workload::LinuxScalability, 0.0002)
        .with_threads(vec![1, 2])
        .with_sizes(vec![8])
        .with_allocators(vec![
            AllocatorKind::FourLevelNb,
            AllocatorKind::OneLevelNb,
            AllocatorKind::BuddySl,
        ]);
    let measurements = harness.run_sweep(&sweep);
    assert_eq!(measurements.len(), 6);

    let csv = report::csv(&measurements);
    assert_eq!(csv.trim().lines().count(), 7);

    let table = report::text_table(&measurements, Metric::Seconds);
    assert!(table.contains("Bytes=8"));
    assert!(table.contains("4lvl-nb"));

    let series = report::figure_series(&measurements, Metric::Seconds);
    assert_eq!(series.matches("# series:").count(), 3);

    let gains = report::speedup_summary(&measurements, Metric::Seconds);
    assert_eq!(gains.len(), 2); // one row per thread count
    for g in &gains {
        assert!(["1lvl-nb", "4lvl-nb"].contains(&g.best_non_blocking.0.as_str()));
        assert_eq!(g.best_blocking.0, "buddy-sl");
    }
    assert!(!report::gain_table(&gains).is_empty());
}

#[test]
fn figure_metadata_is_consistent() {
    for &figure in FigureSpec::all() {
        assert!(!figure.title().is_empty());
        let sweeps = figure.sweeps(0.001);
        assert!(!sweeps.is_empty());
        for sweep in sweeps {
            assert!(sweep.cell_count() > 0);
            assert!(sweep.scale > 0.0);
        }
    }
    assert_eq!(FigureSpec::Fig10.metric(), Metric::KopsPerSec);
    assert_eq!(FigureSpec::Fig12.metric(), Metric::Cycles);
}
